// Package vec is the columnar execution substrate of the streaming
// executor: typed column vectors with null masks, an engine-wide string
// intern table, selection vectors, and fixed-width composite hash keys.
//
// The row representation the executor inherited from the box-at-a-time
// evaluator moves ~48-byte boxed datum.D values one row at a time and hashes
// variable-width AppendKey encodings per row. The types here let the hot
// scan/filter/hash-join loops run over contiguous typed slices instead:
// string values are interned to dense uint32 ids at ingest, so equality and
// hashing become integer compares, and composite join keys normalize to at
// most four 64-bit words — a comparable Go map key with no byte-slice
// encoding at all.
//
// Null masks are []bool rather than packed bitmaps on purpose: the storage
// layer exposes zero-copy column snapshots under the same append-only
// contract as Relation.Rows (rows visible through a snapshot never change),
// and a packed bitmap would share its last word between a reader's snapshot
// and a writer appending bits — a real data race a byte mask cannot have.
package vec

import (
	"math"
	"sync"
	"sync/atomic"

	"starmagic/internal/datum"
)

// Intern is a concurrent, append-only string intern table. Ids are dense,
// stable for the table's lifetime, and never reused; the table only grows.
// The engine owns one table per store (catalog lifetime — it survives
// catalog epoch bumps, so plans cached across mutations keep valid ids).
//
// NULLs are never interned — null-ness travels in the column null mask — so
// the empty string gets an ordinary id and stays distinct from NULL.
type Intern struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string

	bytes  atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

// NewIntern returns an empty intern table.
func NewIntern() *Intern {
	return &Intern{ids: make(map[string]uint32)}
}

// Intern returns the id of s, inserting it if absent. Safe for concurrent
// use; the common repeated-string case takes only the read lock.
func (t *Intern) Intern(s string) uint32 {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		return id
	}
	t.mu.Lock()
	if id, ok = t.ids[s]; ok {
		t.mu.Unlock()
		t.hits.Add(1)
		return id
	}
	id = uint32(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	t.mu.Unlock()
	t.misses.Add(1)
	t.bytes.Add(int64(len(s)) + 16)
	return id
}

// Lookup returns the id of s without inserting. Probe-side values (query
// literals, parameters) resolve through Lookup so ad-hoc queries cannot grow
// the table: a miss means no stored string equals s, so an equality probe
// can never match.
func (t *Intern) Lookup(s string) (uint32, bool) {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	return id, ok
}

// Str returns the string for an id.
func (t *Intern) Str(id uint32) string {
	t.mu.RLock()
	s := t.strs[id]
	t.mu.RUnlock()
	return s
}

// Strs returns a snapshot of the id→string mapping. The slice is append-only
// shared storage: entries [0, len) never change, so the snapshot resolves
// every id that existed when it was taken without further locking.
func (t *Intern) Strs() []string {
	t.mu.RLock()
	s := t.strs
	t.mu.RUnlock()
	return s
}

// InternStats is a point-in-time summary of the table.
type InternStats struct {
	// Strings is the number of distinct interned strings; Bytes approximates
	// their resident footprint (payload plus map overhead).
	Strings int64 `json:"strings"`
	Bytes   int64 `json:"bytes"`
	// Hits and Misses count Intern/Lookup calls that did and did not find the
	// string already present.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats returns the table's current counters.
func (t *Intern) Stats() InternStats {
	t.mu.RLock()
	n := int64(len(t.strs))
	t.mu.RUnlock()
	return InternStats{
		Strings: n,
		Bytes:   t.bytes.Load(),
		Hits:    t.hits.Load(),
		Misses:  t.misses.Load(),
	}
}

// Col is one typed column vector. Exactly one of the value slices is
// populated, per T; Nulls marks NULL positions (the value slot of a NULL row
// is the zero value). Strings are stored as intern ids.
type Col struct {
	T     datum.Type
	Nulls []bool
	I64   []int64
	F64   []float64
	Bs    []bool
	IDs   []uint32
}

// NewCol returns an empty column of type t.
func NewCol(t datum.Type) Col { return Col{T: t} }

// Append adds d (already validated/widened to the column's type) to the
// column, interning strings through tab.
func (c *Col) Append(d datum.D, tab *Intern) {
	null := d.IsNull()
	c.Nulls = append(c.Nulls, null)
	switch c.T {
	case datum.TInt:
		var v int64
		if !null {
			v = d.I
		}
		c.I64 = append(c.I64, v)
	case datum.TFloat:
		var v float64
		if !null {
			v = d.F
		}
		c.F64 = append(c.F64, v)
	case datum.TBool:
		var v bool
		if !null {
			v = d.B
		}
		c.Bs = append(c.Bs, v)
	case datum.TString:
		var id uint32
		if !null {
			id = tab.Intern(d.S)
		}
		c.IDs = append(c.IDs, id)
	}
}

// Len returns the number of values appended.
func (c *Col) Len() int { return len(c.Nulls) }

// Table is a columnar view over a set of rows: N rows across Cols columns.
// Snapshots handed out by the storage layer share the underlying append-only
// slices; rows [0, N) are immutable through the snapshot.
type Table struct {
	N    int
	Cols []Col
}

// Sel is a selection vector: indices of surviving rows, ascending.
type Sel = []int32

// NormNum normalizes a numeric value for fixed-width keying: float64 bits
// with -0.0 folded into +0.0, so INT 3, FLOAT 3.0, and -0.0/+0.0 key alike —
// exactly the equivalence classes of datum.AppendKey's numeric encoding.
func NormNum(f float64) uint64 { return math.Float64bits(f + 0) }

// NormBool normalizes a boolean for fixed-width keying.
func NormBool(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// NormDatum normalizes one non-NULL datum to its 64-bit key word. Strings
// resolve through Lookup — the second result is false when the string is not
// interned, in which case no stored value can equal it.
func NormDatum(d datum.D, tab *Intern) (uint64, bool) {
	switch d.T {
	case datum.TInt:
		return NormNum(float64(d.I)), true
	case datum.TFloat:
		return NormNum(d.F), true
	case datum.TBool:
		return NormBool(d.B), true
	case datum.TString:
		id, ok := tab.Lookup(d.S)
		return uint64(id), ok
	}
	return 0, false
}

// Key is a fixed-width composite equi-join key of up to MaxKeyCols
// normalized words. Positions beyond the key's arity stay zero. NULL key
// components never form a Key — SQL equality never matches NULL, so rows
// with NULL keys are skipped on both build and probe sides.
//
// No type tags are needed: the planner only pairs comparable key columns
// (numeric with numeric, string with string, boolean with boolean), so each
// position's 64-bit word is drawn from one class on both sides.
type Key struct {
	V [4]uint64
}

// MaxKeyCols is the widest composite key Key can hold; wider keys fall back
// to the AppendKey byte encoding.
const MaxKeyCols = 4

// RowKey is a fixed-width grouping/distinct key over a whole row: normalized
// words plus a null mask (SQL groups NULLs together, so NULL participates in
// the key rather than vetoing it) and a per-position class tag guarding
// against mixed-type columns.
type RowKey struct {
	V     [4]uint64
	Tags  uint16 // 2 bits per position: 0 none, 1 numeric, 2 string, 3 bool
	Nulls uint8
	N     uint8
}

// RowKeyer builds RowKeys for transient rows (DISTINCT, set operations,
// group keys), interning strings through a private table so ad-hoc computed
// strings never pollute the engine-wide table. Ids from the private table
// are only compared with each other, which is all keying needs.
type RowKeyer struct {
	tab *Intern
}

// NewRowKeyer returns a keyer with a fresh private intern table.
func NewRowKeyer() *RowKeyer { return &RowKeyer{tab: NewIntern()} }

// Key returns the fixed-width key of row. ok is false when the row is too
// wide or holds a type the fixed encoding cannot represent; callers fall
// back to datum.AppendKey.
func (k *RowKeyer) Key(row datum.Row) (RowKey, bool) {
	if len(row) > MaxKeyCols {
		return RowKey{}, false
	}
	var out RowKey
	out.N = uint8(len(row))
	for i, d := range row {
		if d.IsNull() {
			out.Nulls |= 1 << i
			continue
		}
		var tag uint16
		switch d.T {
		case datum.TInt:
			out.V[i] = NormNum(float64(d.I))
			tag = 1
		case datum.TFloat:
			out.V[i] = NormNum(d.F)
			tag = 1
		case datum.TString:
			out.V[i] = uint64(k.tab.Intern(d.S))
			tag = 2
		case datum.TBool:
			out.V[i] = NormBool(d.B)
			tag = 3
		default:
			return RowKey{}, false
		}
		out.Tags |= tag << (2 * uint(i))
	}
	return out, true
}
