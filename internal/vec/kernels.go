package vec

import "starmagic/internal/datum"

// Comparison kernels evaluate "col op rhs" over a selection vector into a
// parallel three-valued-logic vector: tvs[k] is the verdict for row sel[k].
// NULL operands yield Unknown, matching datum.CompareTV exactly.
//
// Every kernel hoists the operator out of the loop by precomputing the truth
// value for each comparison sign (less / equal / greater), so the inner loop
// is a typed compare and two predictable branches — no interface dispatch,
// no datum.D copies, no byte-key encoding.

// SignTVs maps a comparison operator to the truth value produced by each
// comparison outcome.
func SignTVs(op datum.CmpOp) (lt, eq, gt datum.TV) {
	switch op {
	case datum.EQ:
		return datum.False, datum.True, datum.False
	case datum.NE:
		return datum.True, datum.False, datum.True
	case datum.LT:
		return datum.True, datum.False, datum.False
	case datum.LE:
		return datum.True, datum.True, datum.False
	case datum.GT:
		return datum.False, datum.False, datum.True
	case datum.GE:
		return datum.False, datum.True, datum.True
	}
	return datum.Unknown, datum.Unknown, datum.Unknown
}

// CmpI64Const compares an INT column against an INT constant.
func CmpI64Const(vals []int64, nulls []bool, op datum.CmpOp, rhs int64, sel Sel, tvs []datum.TV) {
	ltv, eqv, gtv := SignTVs(op)
	for k, i := range sel {
		if nulls[i] {
			tvs[k] = datum.Unknown
			continue
		}
		switch v := vals[i]; {
		case v < rhs:
			tvs[k] = ltv
		case v > rhs:
			tvs[k] = gtv
		default:
			tvs[k] = eqv
		}
	}
}

// CmpF64Const compares a FLOAT column against a numeric constant.
func CmpF64Const(vals []float64, nulls []bool, op datum.CmpOp, rhs float64, sel Sel, tvs []datum.TV) {
	ltv, eqv, gtv := SignTVs(op)
	for k, i := range sel {
		if nulls[i] {
			tvs[k] = datum.Unknown
			continue
		}
		switch v := vals[i]; {
		case v < rhs:
			tvs[k] = ltv
		case v > rhs:
			tvs[k] = gtv
		default:
			tvs[k] = eqv
		}
	}
}

// CmpI64ConstF compares an INT column against a FLOAT constant (SQL compares
// mixed numerics as float64).
func CmpI64ConstF(vals []int64, nulls []bool, op datum.CmpOp, rhs float64, sel Sel, tvs []datum.TV) {
	ltv, eqv, gtv := SignTVs(op)
	for k, i := range sel {
		if nulls[i] {
			tvs[k] = datum.Unknown
			continue
		}
		switch v := float64(vals[i]); {
		case v < rhs:
			tvs[k] = ltv
		case v > rhs:
			tvs[k] = gtv
		default:
			tvs[k] = eqv
		}
	}
}

// CmpNumNum compares two numeric columns of the same table element-wise,
// promoting to float64 when either side is FLOAT. a and b must each have
// exactly one of the i64/f64 slices populated.
func CmpNumNum(ai []int64, af []float64, anulls []bool, op datum.CmpOp,
	bi []int64, bf []float64, bnulls []bool, sel Sel, tvs []datum.TV) {
	ltv, eqv, gtv := SignTVs(op)
	intInt := ai != nil && bi != nil
	for k, i := range sel {
		if anulls[i] || bnulls[i] {
			tvs[k] = datum.Unknown
			continue
		}
		var c int
		if intInt {
			switch {
			case ai[i] < bi[i]:
				c = -1
			case ai[i] > bi[i]:
				c = 1
			}
		} else {
			var x, y float64
			if ai != nil {
				x = float64(ai[i])
			} else {
				x = af[i]
			}
			if bi != nil {
				y = float64(bi[i])
			} else {
				y = bf[i]
			}
			switch {
			case x < y:
				c = -1
			case x > y:
				c = 1
			}
		}
		switch {
		case c < 0:
			tvs[k] = ltv
		case c > 0:
			tvs[k] = gtv
		default:
			tvs[k] = eqv
		}
	}
}

// CmpIDConstEQ compares a string column against a constant with = or <>
// purely on intern ids. present is false when the constant is not interned
// (Lookup missed): no stored string equals it, so = is False and <> is True
// for every non-NULL row.
func CmpIDConstEQ(ids []uint32, nulls []bool, rhs uint32, present, neg bool, sel Sel, tvs []datum.TV) {
	tEq, tNe := datum.True, datum.False
	if neg {
		tEq, tNe = datum.False, datum.True
	}
	if !present {
		for k, i := range sel {
			if nulls[i] {
				tvs[k] = datum.Unknown
			} else {
				tvs[k] = tNe
			}
		}
		return
	}
	for k, i := range sel {
		switch {
		case nulls[i]:
			tvs[k] = datum.Unknown
		case ids[i] == rhs:
			tvs[k] = tEq
		default:
			tvs[k] = tNe
		}
	}
}

// CmpIDIDEQ compares two string columns of the same table with = or <> on
// intern ids.
func CmpIDIDEQ(a []uint32, anulls []bool, b []uint32, bnulls []bool, neg bool, sel Sel, tvs []datum.TV) {
	tEq, tNe := datum.True, datum.False
	if neg {
		tEq, tNe = datum.False, datum.True
	}
	for k, i := range sel {
		switch {
		case anulls[i] || bnulls[i]:
			tvs[k] = datum.Unknown
		case a[i] == b[i]:
			tvs[k] = tEq
		default:
			tvs[k] = tNe
		}
	}
}

// CmpStrConstOrd compares a string column against a constant with an
// ordering operator, resolving ids through the intern snapshot. Equal ids
// short-circuit without touching string bytes.
func CmpStrConstOrd(ids []uint32, nulls []bool, strs []string, op datum.CmpOp, rhs string, rhsID uint32, present bool, sel Sel, tvs []datum.TV) {
	ltv, eqv, gtv := SignTVs(op)
	for k, i := range sel {
		if nulls[i] {
			tvs[k] = datum.Unknown
			continue
		}
		if present && ids[i] == rhsID {
			tvs[k] = eqv
			continue
		}
		switch s := strs[ids[i]]; {
		case s < rhs:
			tvs[k] = ltv
		case s > rhs:
			tvs[k] = gtv
		default:
			tvs[k] = eqv
		}
	}
}

// CmpStrStrOrd compares two string columns with an ordering operator.
func CmpStrStrOrd(a []uint32, anulls []bool, b []uint32, bnulls []bool, strs []string, op datum.CmpOp, sel Sel, tvs []datum.TV) {
	ltv, eqv, gtv := SignTVs(op)
	for k, i := range sel {
		if anulls[i] || bnulls[i] {
			tvs[k] = datum.Unknown
			continue
		}
		if a[i] == b[i] {
			tvs[k] = eqv
			continue
		}
		switch x, y := strs[a[i]], strs[b[i]]; {
		case x < y:
			tvs[k] = ltv
		case x > y:
			tvs[k] = gtv
		default:
			tvs[k] = eqv
		}
	}
}

// CmpBoolConst compares a BOOLEAN column against a constant (FALSE < TRUE).
func CmpBoolConst(bs []bool, nulls []bool, op datum.CmpOp, rhs bool, sel Sel, tvs []datum.TV) {
	ltv, eqv, gtv := SignTVs(op)
	rv := NormBool(rhs)
	for k, i := range sel {
		if nulls[i] {
			tvs[k] = datum.Unknown
			continue
		}
		switch v := NormBool(bs[i]); {
		case v < rv:
			tvs[k] = ltv
		case v > rv:
			tvs[k] = gtv
		default:
			tvs[k] = eqv
		}
	}
}

// CmpBoolBool compares two BOOLEAN columns.
func CmpBoolBool(a []bool, anulls []bool, b []bool, bnulls []bool, op datum.CmpOp, sel Sel, tvs []datum.TV) {
	ltv, eqv, gtv := SignTVs(op)
	for k, i := range sel {
		if anulls[i] || bnulls[i] {
			tvs[k] = datum.Unknown
			continue
		}
		switch x, y := NormBool(a[i]), NormBool(b[i]); {
		case x < y:
			tvs[k] = ltv
		case x > y:
			tvs[k] = gtv
		default:
			tvs[k] = eqv
		}
	}
}

// IsNullTV evaluates IS NULL (or IS NOT NULL with negate) over a selection.
func IsNullTV(nulls []bool, negate bool, sel Sel, tvs []datum.TV) {
	tNull, tVal := datum.True, datum.False
	if negate {
		tNull, tVal = datum.False, datum.True
	}
	for k, i := range sel {
		if nulls[i] {
			tvs[k] = tNull
		} else {
			tvs[k] = tVal
		}
	}
}

// NotTV negates a truth-value vector in place (Unknown stays Unknown).
func NotTV(tvs []datum.TV) {
	for k, v := range tvs {
		tvs[k] = v.Not()
	}
}

// FilterTrue compacts sel to the rows whose verdict is True, appending to
// out (pass out[:0] of a reused buffer for an allocation-free filter).
func FilterTrue(sel Sel, tvs []datum.TV, out Sel) Sel {
	for k, i := range sel {
		if tvs[k] == datum.True {
			out = append(out, i)
		}
	}
	return out
}

// Iota fills out with the identity selection [lo, hi).
func Iota(out Sel, lo, hi int32) Sel {
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
