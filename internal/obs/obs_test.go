package obs

import (
	"sync"
	"testing"
	"time"
)

// TestNopTracingAllocFree verifies the tracing-disabled contract the engine
// relies on in its hot path: Start on a nil tracer plus End must not
// allocate.
func TestNopTracingAllocFree(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Start(nil, "execute")
		sp.Annotate("k", "v")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op span allocates %.1f times per start/end; want 0", allocs)
	}
}

func TestRecorderCapturesSpans(t *testing.T) {
	r := NewRecorder()
	sp := Start(r, "phase1")
	sp.Annotate("rules", "6")
	time.Sleep(time.Millisecond)
	sp.End()
	Start(r, "plan-opt-1").End()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	p1, ok := r.Span("phase1")
	if !ok {
		t.Fatal("phase1 span missing")
	}
	if p1.Duration <= 0 {
		t.Errorf("phase1 duration = %v; want > 0", p1.Duration)
	}
	if len(p1.Attrs) != 1 || p1.Attrs[0] != (Attr{Key: "rules", Value: "6"}) {
		t.Errorf("phase1 attrs = %v", p1.Attrs)
	}
	if _, ok := r.Span("missing"); ok {
		t.Error("found a span that was never started")
	}
	r.Reset()
	if len(r.Spans()) != 0 {
		t.Error("Reset did not clear spans")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := r.StartSpan("execute")
				sp.Annotate("i", "x")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(r.Spans()); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
}

func TestMetricsSink(t *testing.T) {
	var sink MetricsSink
	sink.RecordPlan(PlanSample{
		Strategy:       "emst",
		EMSTConsidered: true,
		UsedEMST:       true,
		CostBefore:     100,
		CostAfter:      40,
		OptimizeNanos:  5,
		RuleFires:      map[string]int64{"MAGIC": 2, "MERGE": 3},
	})
	sink.RecordPlan(PlanSample{
		Strategy:       "emst",
		EMSTConsidered: true,
		UsedEMST:       false,
		CostBefore:     10,
		CostAfter:      20,
	})
	sink.RecordPlan(PlanSample{Strategy: "original", Err: true})
	sink.RecordExec(ExecSample{Strategy: "emst", ExecNanos: 7, Exec: ExecStats{BaseRows: 10, HashProbes: 4}})
	sink.RecordExec(ExecSample{Strategy: "emst", Exec: ExecStats{BaseRows: 1}})
	sink.RecordExec(ExecSample{Strategy: "correlated", Err: true})

	m := sink.Snapshot()
	if m.Plans != 3 || m.Queries != 3 || m.Errors != 2 {
		t.Errorf("plans=%d queries=%d errors=%d; want 3, 3, 2", m.Plans, m.Queries, m.Errors)
	}
	if m.EMSTChosen != 1 || m.PreEMSTChosen != 1 {
		t.Errorf("emst=%d pre=%d; want 1, 1", m.EMSTChosen, m.PreEMSTChosen)
	}
	if m.CostDelta != 60 {
		t.Errorf("cost delta = %v; want 60 (losing comparison must not contribute)", m.CostDelta)
	}
	if m.ByStrategy["emst"] != 2 || m.ByStrategy["correlated"] != 1 {
		t.Errorf("by strategy = %v", m.ByStrategy)
	}
	if m.RuleFires["MAGIC"] != 2 || m.RuleFires["MERGE"] != 3 {
		t.Errorf("rule fires = %v", m.RuleFires)
	}
	if m.Exec.BaseRows != 11 || m.Exec.HashProbes != 4 {
		t.Errorf("exec stats = %+v", m.Exec)
	}
	if m.OptimizeNanos != 5 || m.ExecNanos != 7 {
		t.Errorf("nanos = %d/%d", m.OptimizeNanos, m.ExecNanos)
	}

	// Snapshot must be independent of later recording.
	sink.RecordExec(ExecSample{Strategy: "emst"})
	if m.ByStrategy["emst"] != 2 {
		t.Error("snapshot aliases the sink's map")
	}
	sink.Reset()
	if got := sink.Snapshot(); got.Queries != 0 || got.Plans != 0 {
		t.Errorf("after reset: %+v", got)
	}
}
