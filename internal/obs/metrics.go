package obs

import "sync"

// ExecStats mirrors the executor's work counters in a dependency-free form
// (internal/exec cannot be imported here without a cycle; the engine copies
// field by field).
type ExecStats struct {
	BaseRows      int64 `json:"base_rows"`
	BoxEvals      int64 `json:"box_evals"`
	SubqueryEvals int64 `json:"subquery_evals"`
	HashBuilds    int64 `json:"hash_builds"`
	HashProbes    int64 `json:"hash_probes"`
	IndexLookups  int64 `json:"index_lookups"`
	OutputRows    int64 `json:"output_rows"`
}

// Add accumulates other into e.
func (e *ExecStats) Add(other ExecStats) {
	e.BaseRows += other.BaseRows
	e.BoxEvals += other.BoxEvals
	e.SubqueryEvals += other.SubqueryEvals
	e.HashBuilds += other.HashBuilds
	e.HashProbes += other.HashProbes
	e.IndexLookups += other.IndexLookups
	e.OutputRows += other.OutputRows
}

// PlanSample is one optimization's (Prepare's) contribution to the metrics:
// what the rewrite pipeline did and how the §3.2 cost comparison came out.
type PlanSample struct {
	// Err marks a failed parse/bind/optimization.
	Err bool
	// Strategy is the strategy name ("emst", "original", "correlated").
	Strategy string
	// EMSTConsidered reports that the pre-/post-EMST cost comparison ran
	// (only the EMST strategy runs it); UsedEMST reports that it chose the
	// transformed plan.
	EMSTConsidered bool
	UsedEMST       bool
	// CostBefore/CostAfter are the optimizer estimates around EMST.
	CostBefore, CostAfter float64
	// OptimizeNanos is the pipeline wall-clock (rewrite + both plan passes).
	OptimizeNanos int64
	// RuleFires counts graph-mutating rewrite-rule applications by rule.
	RuleFires map[string]int64
	// CacheHit marks a prepare served from the plan cache: the stored
	// optimization already contributed its cost/rule-fire sample when it was
	// prepared cold, so only the call itself is counted.
	CacheHit bool
}

// ExecSample is one execution's contribution to the metrics.
type ExecSample struct {
	// Err marks a failed or cancelled execution.
	Err bool
	// Strategy is the strategy name the plan was prepared under.
	Strategy string
	// ExecNanos is the evaluation wall-clock.
	ExecNanos int64
	// Exec is the executor counter snapshot of this run.
	Exec ExecStats
	// Operators holds per-physical-operator counters when the run used the
	// streaming executor (empty for materialized box-at-a-time runs).
	Operators []OpSample
	// Mem is the memory-governance footprint of the run; the zero value
	// means the run executed without a budget.
	Mem MemSample
	// AdmissionWaitNanos is the time this run spent queued for an admission
	// slot before executing (0 when admission control is off or a slot was
	// free).
	AdmissionWaitNanos int64
}

// MemSample is one budgeted execution's memory footprint.
type MemSample struct {
	// LimitBytes is the per-query memory budget the run executed under.
	LimitBytes int64 `json:"limit_bytes"`
	// PeakBytes is the budget's reservation high-water mark.
	PeakBytes int64 `json:"peak_bytes"`
	// SpilledBytes and Spills count spill-to-disk traffic: bytes written and
	// discrete spill events (hash-partition page-outs, sort-run flushes).
	SpilledBytes int64 `json:"spilled_bytes"`
	Spills       int64 `json:"spills"`
}

// OpSample is one physical operator's execution counters (the dependency-
// free mirror of internal/plan's OpStats — the engine copies field by
// field).
type OpSample struct {
	// Kind is the operator kind ("scan", "select", "limit", ...).
	Kind string `json:"kind"`
	// Rows and Batches count the operator's output.
	Rows    int64 `json:"rows"`
	Batches int64 `json:"batches"`
	// Nanos is inclusive wall-clock (children included).
	Nanos int64 `json:"nanos"`
	// Spills/SpillBytes count spill-to-disk events attributed to this
	// operator under a memory budget, and the bytes they wrote.
	Spills     int64 `json:"spills,omitempty"`
	SpillBytes int64 `json:"spill_bytes,omitempty"`
	// Vectorized marks operators that ran over typed column batches;
	// RowsPerBatch is the operator's mean output batch width (Rows/Batches).
	Vectorized   bool    `json:"vectorized,omitempty"`
	RowsPerBatch float64 `json:"rows_per_batch,omitempty"`
}

// InternStats is the engine-wide string-intern table snapshot (the
// dependency-free mirror of internal/vec's InternStats — the engine copies
// field by field).
type InternStats struct {
	// Strings is the number of distinct interned strings; Bytes approximates
	// their resident footprint.
	Strings int64 `json:"strings"`
	Bytes   int64 `json:"bytes"`
	// Hits and Misses count intern/lookup calls that did and did not find
	// the string already present. Hits/(Hits+Misses) is the hit rate.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// WALStats is the durability snapshot of a disk-backed database: write-ahead
// log activity, checkpoint work, and what recovery-on-open replayed (the
// dependency-free mirror of internal/wal's Stats — the engine copies field
// by field; all zero for in-memory databases).
type WALStats struct {
	// Appends/AppendedBytes count framed log records buffered for write.
	Appends       int64 `json:"appends"`
	AppendedBytes int64 `json:"appended_bytes"`
	// Fsyncs counts segment fsync calls; Synced the commit records those
	// fsyncs covered. GroupCommitMean = Synced/Fsyncs is the mean
	// group-commit batch size (1.0 means no batching happened).
	Fsyncs          int64   `json:"fsyncs"`
	Synced          int64   `json:"synced"`
	GroupCommitMean float64 `json:"group_commit_mean"`
	// Rotations counts log-segment rollovers (one per checkpoint attempt);
	// Checkpoints committed checkpoint images, with the size and wall-clock
	// of the most recent one.
	Rotations       int64 `json:"rotations"`
	Checkpoints     int64 `json:"checkpoints"`
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	CheckpointNanos int64 `json:"checkpoint_nanos"`
	// SegmentBytes is the current segment's size — the distance to the next
	// size-triggered checkpoint.
	SegmentBytes int64 `json:"segment_bytes"`
	// RecoveryNanos/RecoveryRecords describe the recovery OpenDir performed:
	// wall-clock and log records (commits + DDL) replayed past the
	// checkpoint image.
	RecoveryNanos   int64 `json:"recovery_nanos"`
	RecoveryRecords int64 `json:"recovery_records"`
}

// Metrics is a point-in-time snapshot of engine activity since Open (or the
// last Reset): optimization volume and plan-choice outcomes of the paper's
// §3.2 cost comparison (per prepared plan), execution volume and cumulative
// executor work (per run), and rewrite-rule fire counts.
type Metrics struct {
	// Plans counts optimizations (Prepare/Explain calls, including failed
	// ones); Queries counts plan executions. A plan prepared once and
	// executed N times contributes 1 and N respectively.
	Plans   int64 `json:"plans"`
	Queries int64 `json:"queries"`
	// Errors counts failed optimizations plus failed/cancelled executions.
	Errors int64 `json:"errors"`
	// ByStrategy counts executions per strategy name.
	ByStrategy map[string]int64 `json:"by_strategy"`
	// EMSTChosen/PreEMSTChosen split the cost-comparison outcomes: how often
	// the magic plan won versus how often the engine fell back.
	EMSTChosen    int64 `json:"emst_chosen"`
	PreEMSTChosen int64 `json:"pre_emst_chosen"`
	// CostDelta sums CostBefore-CostAfter over comparisons that chose EMST:
	// the optimizer's estimate of the total work magic saved.
	CostDelta float64 `json:"cost_delta"`
	// OptimizeNanos/ExecNanos accumulate pipeline wall-clock.
	OptimizeNanos int64 `json:"optimize_nanos"`
	ExecNanos     int64 `json:"exec_nanos"`
	// RuleFires accumulates graph-mutating rewrite-rule applications.
	RuleFires map[string]int64 `json:"rule_fires"`
	// Exec accumulates executor counters across all executions.
	Exec ExecStats `json:"exec"`
	// OpRows/OpNanos accumulate per-operator-kind output rows and inclusive
	// wall-clock across streaming executions.
	OpRows  map[string]int64 `json:"op_rows"`
	OpNanos map[string]int64 `json:"op_nanos"`
	// Plan-cache counters. CacheHits counts prepares served from the cache,
	// CacheMisses cold optimizations entered into it, CacheShared prepares
	// that waited on another caller's in-flight miss (single-flight), and
	// CacheEvictions entries displaced by LRU capacity.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheShared    int64 `json:"cache_shared"`
	CacheEvictions int64 `json:"cache_evictions"`
	// Memory-governance counters. BytesSpilled/Spills accumulate spill-to-
	// disk traffic across budgeted executions; MemPeakBytes is the largest
	// single-query reservation high-water mark observed.
	BytesSpilled int64 `json:"bytes_spilled"`
	Spills       int64 `json:"spills"`
	MemPeakBytes int64 `json:"mem_peak_bytes"`
	// Admission-control counters. AdmissionWaits counts executions that
	// queued for a slot, AdmissionWaitNanos their total queued time, and
	// AdmissionRejected executions bounced by a full queue (or a done
	// deadline) before running.
	AdmissionWaits     int64 `json:"admission_waits"`
	AdmissionWaitNanos int64 `json:"admission_wait_nanos"`
	AdmissionRejected  int64 `json:"admission_rejected"`
	// Transaction counters. TxnBegins/TxnCommits/TxnRollbacks count explicit
	// and autocommit transactions (every DML statement outside an explicit
	// transaction is one autocommit transaction); TxnConflicts counts
	// first-updater-wins write-write conflicts (MySQL errno 1213), which
	// roll the losing transaction back.
	TxnBegins    int64 `json:"txn_begins"`
	TxnCommits   int64 `json:"txn_commits"`
	TxnRollbacks int64 `json:"txn_rollbacks"`
	TxnConflicts int64 `json:"txn_conflicts"`
	// Vacuum counters. VacuumRuns counts background/explicit vacuum passes;
	// VacuumReclaimed the row versions they removed.
	VacuumRuns      int64 `json:"vacuum_runs"`
	VacuumReclaimed int64 `json:"vacuum_reclaimed"`
	// Execution-feedback counters. FeedbackUpdates counts fully-drained
	// executions folded into a plan's learned cardinalities, FeedbackMarked
	// plans newly marked for re-optimization by a q-error crossing, and
	// FeedbackReopts re-optimizations actually served at a subsequent
	// prepare. FeedbackMaxQ is the worst smoothed q-error observed.
	FeedbackUpdates int64   `json:"feedback_updates"`
	FeedbackMarked  int64   `json:"feedback_marked"`
	FeedbackReopts  int64   `json:"feedback_reopts"`
	FeedbackMaxQ    float64 `json:"feedback_max_q"`
	// Intern is the engine-wide string-intern table at snapshot time (filled
	// by the engine from storage, not accumulated through the sink).
	Intern InternStats `json:"intern"`
	// WAL is the durability snapshot at snapshot time (filled by the engine
	// from the write-ahead log, not accumulated through the sink; zero for
	// in-memory databases).
	WAL WALStats `json:"wal"`
}

// MetricsSink accumulates samples; Snapshot returns an independent Metrics
// copy. Safe for concurrent use.
type MetricsSink struct {
	mu sync.Mutex
	m  Metrics
}

// RecordPlan folds one optimization's sample into the sink.
func (s *MetricsSink) RecordPlan(p PlanSample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.Plans++
	if p.Err {
		s.m.Errors++
		return
	}
	if p.CacheHit {
		return
	}
	if p.EMSTConsidered {
		if p.UsedEMST {
			s.m.EMSTChosen++
			s.m.CostDelta += p.CostBefore - p.CostAfter
		} else {
			s.m.PreEMSTChosen++
		}
	}
	s.m.OptimizeNanos += p.OptimizeNanos
	if len(p.RuleFires) > 0 {
		if s.m.RuleFires == nil {
			s.m.RuleFires = map[string]int64{}
		}
		for rule, n := range p.RuleFires {
			s.m.RuleFires[rule] += n
		}
	}
}

// RecordExec folds one execution's sample into the sink.
func (s *MetricsSink) RecordExec(e ExecSample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.Queries++
	if e.Err {
		s.m.Errors++
	}
	if e.Strategy != "" {
		if s.m.ByStrategy == nil {
			s.m.ByStrategy = map[string]int64{}
		}
		s.m.ByStrategy[e.Strategy]++
	}
	s.m.ExecNanos += e.ExecNanos
	s.m.Exec.Add(e.Exec)
	for _, op := range e.Operators {
		if s.m.OpRows == nil {
			s.m.OpRows = map[string]int64{}
			s.m.OpNanos = map[string]int64{}
		}
		s.m.OpRows[op.Kind] += op.Rows
		s.m.OpNanos[op.Kind] += op.Nanos
	}
	s.m.BytesSpilled += e.Mem.SpilledBytes
	s.m.Spills += e.Mem.Spills
	if e.Mem.PeakBytes > s.m.MemPeakBytes {
		s.m.MemPeakBytes = e.Mem.PeakBytes
	}
	if e.AdmissionWaitNanos > 0 {
		s.m.AdmissionWaits++
		s.m.AdmissionWaitNanos += e.AdmissionWaitNanos
	}
}

// RecordAdmissionRejected counts an execution bounced by admission control
// before it could run (full queue or expired deadline).
func (s *MetricsSink) RecordAdmissionRejected() {
	s.mu.Lock()
	s.m.AdmissionRejected++
	s.mu.Unlock()
}

// RecordCacheHit counts a prepare served from the plan cache.
func (s *MetricsSink) RecordCacheHit() {
	s.mu.Lock()
	s.m.CacheHits++
	s.mu.Unlock()
}

// RecordCacheMiss counts a cold optimization entered into the plan cache.
func (s *MetricsSink) RecordCacheMiss() {
	s.mu.Lock()
	s.m.CacheMisses++
	s.mu.Unlock()
}

// RecordCacheShared counts a prepare that waited on another caller's
// in-flight miss instead of optimizing (single-flight).
func (s *MetricsSink) RecordCacheShared() {
	s.mu.Lock()
	s.m.CacheShared++
	s.mu.Unlock()
}

// RecordCacheEvictions counts plan-cache entries displaced by LRU capacity.
func (s *MetricsSink) RecordCacheEvictions(n int) {
	s.mu.Lock()
	s.m.CacheEvictions += int64(n)
	s.mu.Unlock()
}

// RecordTxnBegin counts a transaction start (explicit or autocommit).
func (s *MetricsSink) RecordTxnBegin() {
	s.mu.Lock()
	s.m.TxnBegins++
	s.mu.Unlock()
}

// RecordTxnCommit counts a committed transaction.
func (s *MetricsSink) RecordTxnCommit() {
	s.mu.Lock()
	s.m.TxnCommits++
	s.mu.Unlock()
}

// RecordTxnRollback counts a rolled-back transaction.
func (s *MetricsSink) RecordTxnRollback() {
	s.mu.Lock()
	s.m.TxnRollbacks++
	s.mu.Unlock()
}

// RecordTxnConflict counts a first-updater-wins write-write conflict.
func (s *MetricsSink) RecordTxnConflict() {
	s.mu.Lock()
	s.m.TxnConflicts++
	s.mu.Unlock()
}

// RecordFeedback counts one execution folded into a plan's learned
// cardinalities: maxQ is the worst smoothed q-error after the fold, marked
// reports that the fold newly marked the plan for re-optimization.
func (s *MetricsSink) RecordFeedback(maxQ float64, marked bool) {
	s.mu.Lock()
	s.m.FeedbackUpdates++
	if marked {
		s.m.FeedbackMarked++
	}
	if maxQ > s.m.FeedbackMaxQ {
		s.m.FeedbackMaxQ = maxQ
	}
	s.mu.Unlock()
}

// RecordReopt counts a feedback-driven re-optimization served at prepare.
func (s *MetricsSink) RecordReopt() {
	s.mu.Lock()
	s.m.FeedbackReopts++
	s.mu.Unlock()
}

// RecordVacuum counts one vacuum pass and the versions it reclaimed.
func (s *MetricsSink) RecordVacuum(reclaimed int) {
	s.mu.Lock()
	s.m.VacuumRuns++
	s.m.VacuumReclaimed += int64(reclaimed)
	s.mu.Unlock()
}

// Snapshot returns a deep copy of the accumulated metrics.
func (s *MetricsSink) Snapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.m
	out.ByStrategy = copyMap(s.m.ByStrategy)
	out.RuleFires = copyMap(s.m.RuleFires)
	out.OpRows = copyMap(s.m.OpRows)
	out.OpNanos = copyMap(s.m.OpNanos)
	return out
}

// Reset zeroes the accumulated metrics.
func (s *MetricsSink) Reset() {
	s.mu.Lock()
	s.m = Metrics{}
	s.mu.Unlock()
}

func copyMap(m map[string]int64) map[string]int64 {
	if m == nil {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
