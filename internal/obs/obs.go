// Package obs is the engine's observability substrate: a pluggable span
// tracer for the optimization/execution pipeline of the paper's Figure 2,
// and an aggregated metrics sink that promotes executor counters and
// plan-choice outcomes to structured, queryable data.
//
// The package is dependency-free by design (it imports only the standard
// library) so every layer — rewrite engine, pipeline, executor, engine —
// can emit into it without import cycles.
//
// Tracing is zero-cost when disabled: Start on a nil Tracer returns a
// shared no-op span (a zero-size value, so the interface conversion does
// not allocate), and End on it is an empty method. The engine threads a
// nil Tracer by default; only callers that pass WithTracer pay for spans.
package obs

import (
	"sync"
	"time"
)

// Tracer receives one span per pipeline phase (parse, bind, the three
// rewrite phases, both plan-optimization passes, execution). Implementations
// must be safe for concurrent use: one Database serves many queries.
type Tracer interface {
	// StartSpan opens a span. The returned span's End marks its completion;
	// spans of one query do not nest (the pipeline is sequential), but spans
	// of concurrent queries interleave.
	StartSpan(name string) Span
}

// Span is one timed pipeline phase.
type Span interface {
	// Annotate attaches a key/value to the span. No-op implementations
	// discard it.
	Annotate(key, value string)
	// End marks the span complete.
	End()
}

// nopSpan is the shared disabled span. It is an empty struct, so storing it
// in a Span interface points at the runtime's zero base and never allocates.
type nopSpan struct{}

func (nopSpan) Annotate(string, string) {}
func (nopSpan) End()                    {}

// NopSpan is the span returned when tracing is disabled.
var NopSpan Span = nopSpan{}

// Start opens a span on t, tolerating a nil tracer: the common
// tracing-disabled call is one nil check and no allocation.
func Start(t Tracer, name string) Span {
	if t == nil {
		return NopSpan
	}
	return t.StartSpan(name)
}

// Attr is one span annotation.
type Attr struct {
	Key, Value string
}

// SpanRecord is one completed span captured by a Recorder.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Recorder is a Tracer that captures completed spans in memory, in End
// order. It is safe for concurrent use; ExplainContext uses one per call,
// and tests assert phase coverage through it.
type Recorder struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// StartSpan opens a recording span.
func (r *Recorder) StartSpan(name string) Span {
	return &recSpan{rec: r, name: name, start: time.Now()}
}

// Spans returns a copy of the completed spans in completion order.
func (r *Recorder) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}

// Span returns the first completed span with the given name, if any.
func (r *Recorder) Span(name string) (SpanRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.spans {
		if s.Name == name {
			return s, true
		}
	}
	return SpanRecord{}, false
}

// Reset discards the captured spans.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.mu.Unlock()
}

type recSpan struct {
	rec   *Recorder
	name  string
	start time.Time
	attrs []Attr
}

func (s *recSpan) Annotate(key, value string) {
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

func (s *recSpan) End() {
	rec := SpanRecord{Name: s.name, Start: s.start, Duration: time.Since(s.start), Attrs: s.attrs}
	s.rec.mu.Lock()
	s.rec.spans = append(s.rec.spans, rec)
	s.rec.mu.Unlock()
}
