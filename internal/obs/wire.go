package obs

import "sync"

// WireMetrics is a point-in-time snapshot of a wire server's activity:
// connection lifecycle, per-command volume, and result traffic. The wire
// server accumulates these through a WireSink, the protocol-layer sibling of
// MetricsSink (engine-side activity keeps flowing through the engine's own
// sink; a wire query therefore shows up in both).
type WireMetrics struct {
	// ConnectionsOpened/ConnectionsClosed count accepted and finished
	// connections; ConnectionsFailed counts handshakes that never completed
	// (bad auth, protocol garbage, immediate disconnect).
	ConnectionsOpened int64 `json:"connections_opened"`
	ConnectionsClosed int64 `json:"connections_closed"`
	ConnectionsFailed int64 `json:"connections_failed"`
	// Queries counts COM_QUERY commands, StmtPrepares/StmtExecs the prepared-
	// statement commands, and Pings COM_PING round-trips.
	Queries      int64 `json:"queries"`
	StmtPrepares int64 `json:"stmt_prepares"`
	StmtExecs    int64 `json:"stmt_execs"`
	Pings        int64 `json:"pings"`
	// RowsSent counts result rows written to clients; ErrorsSent counts ERR
	// packets (one per failed command).
	RowsSent   int64 `json:"rows_sent"`
	ErrorsSent int64 `json:"errors_sent"`
}

// WireSink accumulates wire-server samples; Snapshot returns an independent
// copy. Safe for concurrent use by many connection goroutines.
type WireSink struct {
	mu sync.Mutex
	m  WireMetrics
}

// ConnSample summarizes one finished connection.
type ConnSample struct {
	// Failed marks a connection that never completed its handshake.
	Failed bool
	// Queries, StmtPrepares, StmtExecs, Pings, RowsSent, and ErrorsSent
	// carry the connection's command and traffic counts.
	Queries      int64
	StmtPrepares int64
	StmtExecs    int64
	Pings        int64
	RowsSent     int64
	ErrorsSent   int64
}

// RecordConnOpen notes an accepted connection.
func (s *WireSink) RecordConnOpen() {
	s.mu.Lock()
	s.m.ConnectionsOpened++
	s.mu.Unlock()
}

// RecordConnClose folds a finished connection's sample into the sink.
func (s *WireSink) RecordConnClose(c ConnSample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.Failed {
		s.m.ConnectionsFailed++
	} else {
		s.m.ConnectionsClosed++
	}
	s.m.Queries += c.Queries
	s.m.StmtPrepares += c.StmtPrepares
	s.m.StmtExecs += c.StmtExecs
	s.m.Pings += c.Pings
	s.m.RowsSent += c.RowsSent
	s.m.ErrorsSent += c.ErrorsSent
}

// Snapshot returns a copy of the accumulated wire metrics.
func (s *WireSink) Snapshot() WireMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}
