package plan

import (
	"fmt"
	"strings"

	"starmagic/internal/datum"
	"starmagic/internal/opt"
	"starmagic/internal/qgm"
)

// Lower turns an optimized QGM graph into a physical plan. Each box becomes
// an operator subtree; select boxes consume the optimizer's JoinOrder to lay
// out pipeline stages with explicit access paths. Boxes the streaming
// executor cannot (or should not) stream — correlated subtrees, shared
// common subexpressions, extension kinds, recursive fixpoints — lower to
// bridge operators that evaluate through the classic box-at-a-time
// evaluator, so every graph the evaluator accepts has a plan.
func Lower(g *qgm.Graph) *Plan {
	return LowerWith(g, opt.NewEstimator())
}

// LowerWith is Lower with a caller-supplied estimator, so operator EstRows
// annotations reflect feedback cardinality hints when a plan is re-optimized
// from observed actuals.
func LowerWith(g *qgm.Graph, est *opt.Estimator) *Plan {
	lw := &lowerer{
		p:         &Plan{Graph: g},
		est:       est,
		uses:      map[*qgm.Box]int{},
		freeCache: map[*qgm.Box]bool{},
		visiting:  map[*qgm.Box]bool{},
	}
	for _, b := range g.Boxes {
		for _, q := range b.Quantifiers {
			lw.uses[q.Ranges]++
		}
		if b.MagicBox != nil {
			lw.uses[b.MagicBox]++
		}
	}
	lw.uses[g.Top]++

	root := lw.lowerBox(g.Top)
	if len(g.OrderBy) > 0 {
		s := lw.p.newNode(OpSort, nil, "sort")
		s.OrderBy = g.OrderBy
		s.Detail = orderDetail(g.OrderBy)
		s.EstRows = root.EstRows
		s.EstMem = root.EstMem
		s.Children = []*Node{root}
		root = s
	}
	if g.Limit >= 0 {
		l := lw.p.newNode(OpLimit, nil, fmt.Sprintf("limit %d", g.Limit))
		l.N = g.Limit
		l.EstRows = float64(g.Limit)
		l.Children = []*Node{root}
		root = l
	}
	if g.HiddenCols > 0 {
		t := lw.p.newNode(OpTrim, nil, "trim")
		t.Hidden = g.HiddenCols
		t.Detail = fmt.Sprintf("%d hidden cols", g.HiddenCols)
		t.EstRows = root.EstRows
		t.EstMem = root.EstMem
		t.Children = []*Node{root}
		root = t
	}
	lw.p.Root = root
	return lw.p
}

type lowerer struct {
	p         *Plan
	est       *opt.Estimator
	uses      map[*qgm.Box]int
	freeCache map[*qgm.Box]bool
	visiting  map[*qgm.Box]bool
}

// hasFree reports whether b's subtree references quantifiers declared
// outside it (correlation). Mirrors the evaluator's closedness test.
func (lw *lowerer) hasFree(b *qgm.Box) bool {
	if v, ok := lw.freeCache[b]; ok {
		return v
	}
	owned := map[*qgm.Quantifier]bool{}
	seen := map[*qgm.Box]bool{}
	var collect func(box *qgm.Box)
	collect = func(box *qgm.Box) {
		if box == nil || seen[box] {
			return
		}
		seen[box] = true
		for _, q := range box.Quantifiers {
			owned[q] = true
			collect(q.Ranges)
		}
		collect(box.MagicBox)
	}
	collect(b)

	free := false
	check := func(e qgm.Expr) {
		if e == nil || free {
			return
		}
		qgm.VisitRefs(e, func(c *qgm.ColRef) {
			if !owned[c.Q] {
				free = true
			}
		})
	}
	for box := range seen {
		for _, e := range box.Preds {
			check(e)
		}
		for _, oc := range box.Output {
			check(oc.Expr)
		}
		for _, e := range box.GroupBy {
			check(e)
		}
		for _, a := range box.Aggs {
			check(a.Arg)
		}
	}
	lw.freeCache[b] = free
	return free
}

// bridge creates a box-eval operator: the box is materialized through the
// classic evaluator (memoized when closed).
func (lw *lowerer) bridge(b *qgm.Box, reason string) *Node {
	n := lw.p.newNode(OpBoxEval, b, "materialize "+boxName(b))
	n.Detail = reason
	n.EstRows = lw.est.Card(b)
	n.EstMem = n.EstRows * estWidth(b)
	return n
}

// estWidth is a coarse per-row byte estimate (datum struct size per output
// column plus a slice header) used for EstMem.
func estWidth(b *qgm.Box) float64 {
	cols := 4
	if b != nil && len(b.Output) > 0 {
		cols = len(b.Output)
	}
	return float64(24 + 48*cols)
}

func (lw *lowerer) lowerBox(b *qgm.Box) *Node {
	switch {
	case lw.visiting[b]:
		return lw.bridge(b, "cyclic")
	case b.Recursive:
		n := lw.p.newNode(OpFixpoint, b, "fixpoint "+boxName(b))
		n.Detail = "semi-naive iteration"
		n.EstRows = lw.est.Card(b)
		n.EstMem = n.EstRows * estWidth(b)
		return n
	case lw.hasFree(b):
		return lw.bridge(b, "correlated")
	case lw.uses[b] > 1 && b.Kind != qgm.KindBaseTable:
		return lw.bridge(b, "shared")
	}
	lw.visiting[b] = true
	defer delete(lw.visiting, b)

	var n *Node
	switch b.Kind {
	case qgm.KindBaseTable:
		n = lw.p.newNode(OpScan, b, "scan "+b.Table.Name)
	case qgm.KindSelect:
		n = lw.lowerSelect(b)
	case qgm.KindGroupBy:
		n = lw.p.newNode(OpGroupBy, b, "group-by "+boxName(b))
		n.Detail = fmt.Sprintf("%d keys, %d aggs", len(b.GroupBy), len(b.Aggs))
		n.Children = []*Node{lw.lowerBox(b.Quantifiers[0].Ranges)}
	case qgm.KindUnion:
		n = lw.p.newNode(OpUnion, b, "union "+boxName(b))
		for _, q := range b.Quantifiers {
			n.Children = append(n.Children, lw.lowerBox(q.Ranges))
		}
	case qgm.KindIntersect:
		n = lw.p.newNode(OpIntersect, b, "intersect "+boxName(b))
		n.Detail = setDetail(b)
		n.Children = []*Node{lw.lowerBox(b.Quantifiers[0].Ranges), lw.lowerBox(b.Quantifiers[1].Ranges)}
	case qgm.KindExcept:
		n = lw.p.newNode(OpExcept, b, "except "+boxName(b))
		n.Detail = setDetail(b)
		n.Children = []*Node{lw.lowerBox(b.Quantifiers[0].Ranges), lw.lowerBox(b.Quantifiers[1].Ranges)}
	default:
		return lw.bridge(b, "extension kind")
	}
	n.EstRows = lw.est.Card(b)
	n.EstMem = n.EstRows * estWidth(b)

	// Duplicate elimination of select and union boxes is a distinct wrapper
	// (intersect/except handle their distinct variants inline — EXCEPT
	// DISTINCT is not distinct-of-EXCEPT-ALL).
	if b.Distinct != qgm.DistinctPreserve && (b.Kind == qgm.KindSelect || b.Kind == qgm.KindUnion) {
		d := lw.p.newNode(OpDistinct, b, "distinct")
		d.EstRows = n.EstRows
		d.EstMem = n.EstMem
		d.Children = []*Node{n}
		d.BoxRoot = true
		return d
	}
	n.BoxRoot = true
	return n
}

// lowerSelect lays out a select box's join pipeline: predicate staging and
// equality-key extraction mirror the evaluator's per-box planning, but are
// resolved once at lowering time against the optimizer's join order.
func (lw *lowerer) lowerSelect(b *qgm.Box) *Node {
	n := lw.p.newNode(OpSelect, b, "select "+boxName(b))

	var fQ, sQ, qQ []*qgm.Quantifier
	for _, q := range b.OrderedQuantifiers() {
		switch q.Type {
		case qgm.ForEach:
			fQ = append(fQ, q)
		case qgm.Scalar:
			sQ = append(sQ, q)
		default:
			qQ = append(qQ, q)
		}
	}

	pos := map[*qgm.Quantifier]int{} // F quantifier -> position+1
	for i, q := range fQ {
		pos[q] = i + 1
	}
	isScalar := map[*qgm.Quantifier]bool{}
	for _, q := range sQ {
		isScalar[q] = true
	}
	isEA := map[*qgm.Quantifier]bool{}
	for _, q := range qQ {
		isEA[q] = true
	}

	// stagePreds[i] holds predicates evaluable once fQ[:i] are bound.
	stagePreds := make([][]qgm.Expr, len(fQ)+1)
	matchPreds := map[*qgm.Quantifier][]qgm.Expr{}
	for _, pred := range b.Preds {
		var ea *qgm.Quantifier
		stage := 0
		needsScalar := false
		unbound := false
		qgm.VisitRefs(pred, func(c *qgm.ColRef) {
			switch {
			case isEA[c.Q]:
				ea = c.Q
			case isScalar[c.Q]:
				needsScalar = true
			case pos[c.Q] > 0:
				if pos[c.Q] > stage {
					stage = pos[c.Q]
				}
			default:
				unbound = true
			}
		})
		switch {
		case unbound:
			n.PostPreds = append(n.PostPreds, pred)
		case ea != nil:
			matchPreds[ea] = append(matchPreds[ea], pred)
		case needsScalar:
			n.PostPreds = append(n.PostPreds, pred)
		default:
			stagePreds[stage] = append(stagePreds[stage], pred)
		}
	}
	n.ConstPreds = stagePreds[0]

	var detail []string
	for i, q := range fQ {
		st := Stage{Quant: q}
		preds := stagePreds[i+1]
		childBox := q.Ranges
		corr := lw.hasFree(childBox)

		// Split stage predicates into strict equality keys (one side
		// references only q, the other only earlier stages) and residual
		// filters.
		var residual []qgm.Expr
		if !corr {
			earlier := map[*qgm.Quantifier]bool{}
			for _, eq := range fQ[:i] {
				earlier[eq] = true
			}
			for _, pred := range preds {
				if cmp, ok := pred.(*qgm.Cmp); ok && cmp.Op == datum.EQ {
					switch {
					case refsOnly(cmp.L, q) && refsWithin(cmp.R, earlier):
						st.KeyMine = append(st.KeyMine, cmp.L)
						st.KeyOther = append(st.KeyOther, cmp.R)
						continue
					case refsOnly(cmp.R, q) && refsWithin(cmp.L, earlier):
						st.KeyMine = append(st.KeyMine, cmp.R)
						st.KeyOther = append(st.KeyOther, cmp.L)
						continue
					}
				}
				residual = append(residual, pred)
			}
		}

		indexable := len(st.KeyMine) > 0 && childBox.Kind == qgm.KindBaseTable
		if indexable {
			for _, m := range st.KeyMine {
				cr, ok := m.(*qgm.ColRef)
				if !ok || cr.Q != q {
					indexable = false
					break
				}
				st.IndexCols = append(st.IndexCols, cr.Ord)
			}
			if !indexable {
				st.IndexCols = nil
			}
		}

		switch {
		case corr:
			st.Access = AccessCorr
			st.Residual = preds
			st.Child = lw.bridge(childBox, "correlated")
		case indexable:
			st.Access = AccessIndex
			st.Residual = residual
			st.Child = lw.lowerBox(childBox)
		case i == 0:
			st.Access = AccessStream
			st.Residual = preds
			st.KeyMine, st.KeyOther = nil, nil
			st.Child = lw.lowerBox(childBox)
		case len(st.KeyMine) > 0:
			st.Access = AccessHash
			st.Residual = residual
			st.Child = lw.lowerBox(childBox)
		default:
			st.Access = AccessScan
			st.Residual = preds
			st.Child = lw.lowerBox(childBox)
		}
		n.Stages = append(n.Stages, st)
		n.Children = append(n.Children, st.Child)
		detail = append(detail, q.Name+":"+st.Access.String())
	}

	n.Scalars = sQ
	for _, q := range sQ {
		reason := "scalar, memoized"
		if lw.hasFree(q.Ranges) {
			reason = "scalar, correlated"
		}
		child := lw.bridge(q.Ranges, reason)
		n.Children = append(n.Children, child)
		detail = append(detail, q.Name+":scalar")
	}

	for _, q := range qQ {
		sq := Subquery{Quant: q, Match: matchPreds[q], Mode: SubqBridge}
		closed := !lw.hasFree(q.Ranges)
		onlyQ := true
		allowed := map[*qgm.Quantifier]bool{q: true}
		for _, m := range sq.Match {
			if !qgm.OnlyRefs(m, allowed) {
				onlyQ = false
				break
			}
		}
		kind := "semi"
		if q.Type == qgm.ForAll {
			kind = "anti"
		}
		if closed && onlyQ {
			// The check's outcome is independent of the outer bindings:
			// stream the subquery and stop at the first decisive row.
			sq.Mode = SubqFirstMatch
			sq.Child = lw.lowerBox(q.Ranges)
			detail = append(detail, q.Name+":"+kind+"-first-match")
		} else {
			reason := kind + "-join, memoized"
			if !closed {
				reason = kind + "-join, correlated"
			}
			sq.Child = lw.bridge(q.Ranges, reason)
			detail = append(detail, q.Name+":"+kind)
		}
		n.Subqs = append(n.Subqs, sq)
		n.Children = append(n.Children, sq.Child)
	}

	n.Detail = strings.Join(detail, ", ")
	n.Vec = vectorizableSelect(n)
	return n
}

// vectorizableSelect is the lowering-time vectorizability decision for a
// select pipeline: the driving stage streams a base-table scan whose
// residual filters are kernel-compilable, every later stage is a hash join
// keyed on at most vec.MaxKeyCols plain column/constant expressions, and
// nothing forces row-at-a-time finishing (scalar subqueries, semi/anti
// checks, post-predicates). The executor re-verifies at build time against
// runtime types and the memory mode; this flag is the shared structural
// judgment surfaced in EXPLAIN.
func vectorizableSelect(n *Node) bool {
	if len(n.Scalars) > 0 || len(n.Subqs) > 0 || len(n.PostPreds) > 0 || len(n.Stages) == 0 {
		return false
	}
	for i := range n.Stages {
		st := &n.Stages[i]
		if i == 0 {
			if st.Access != AccessStream || st.Child.Kind != OpScan {
				return false
			}
			for _, e := range st.Residual {
				if !vecFilterable(e, st.Quant) {
					return false
				}
			}
			continue
		}
		if st.Access != AccessHash || len(st.KeyMine) == 0 || len(st.KeyMine) > maxVecKeys {
			return false
		}
		for _, e := range st.KeyMine {
			if cr, ok := e.(*qgm.ColRef); !ok || cr.Q != st.Quant {
				return false
			}
		}
		for _, e := range st.KeyOther {
			switch e.(type) {
			case *qgm.ColRef, *qgm.Const, *qgm.Param:
			default:
				return false
			}
		}
	}
	return true
}

// maxVecKeys mirrors vec.MaxKeyCols without importing the executor's vec
// package into the plan layer.
const maxVecKeys = 4

// vecFilterable reports whether a driving-stage filter can compile to
// column kernels: comparisons, three-valued logic, IS [NOT] NULL, and
// numeric arithmetic over the stage's own columns, constants, and
// parameters. Functions, LIKE, CASE, concatenation, and references to other
// quantifiers force the row pipeline.
func vecFilterable(e qgm.Expr, q *qgm.Quantifier) bool {
	switch x := e.(type) {
	case *qgm.Const, *qgm.Param:
		return true
	case *qgm.ColRef:
		return x.Q == q
	case *qgm.Cmp:
		return vecFilterable(x.L, q) && vecFilterable(x.R, q)
	case *qgm.Logic:
		for _, a := range x.Args {
			if !vecFilterable(a, q) {
				return false
			}
		}
		return true
	case *qgm.Not:
		return vecFilterable(x.X, q)
	case *qgm.IsNull:
		return vecFilterable(x.X, q)
	case *qgm.Arith:
		return vecFilterable(x.L, q) && vecFilterable(x.R, q)
	case *qgm.Neg:
		return vecFilterable(x.X, q)
	}
	return false
}

// refsOnly reports whether e references quantifier q and nothing else.
func refsOnly(e qgm.Expr, q *qgm.Quantifier) bool {
	found, only := false, true
	qgm.VisitRefs(e, func(c *qgm.ColRef) {
		if c.Q == q {
			found = true
		} else {
			only = false
		}
	})
	return found && only
}

// refsWithin reports whether every reference in e targets a quantifier in
// allowed (constant expressions qualify).
func refsWithin(e qgm.Expr, allowed map[*qgm.Quantifier]bool) bool {
	ok := true
	qgm.VisitRefs(e, func(c *qgm.ColRef) {
		if !allowed[c.Q] {
			ok = false
		}
	})
	return ok
}

func boxName(b *qgm.Box) string {
	if b.Name != "" {
		return b.Name
	}
	return fmt.Sprintf("%s#%d", b.Kind, b.ID)
}

func orderDetail(specs []qgm.OrderSpec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		dir := "asc"
		if s.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("c%d %s", s.Ord, dir)
	}
	return strings.Join(parts, ", ")
}

func setDetail(b *qgm.Box) string {
	if b.Distinct != qgm.DistinctPreserve {
		return "distinct"
	}
	return "all"
}
