// Package plan is the physical-plan layer between the QGM rewrite graph and
// the executor. Lowering turns each optimized box — together with the join
// order the plan optimizer recorded in Box.JoinOrder — into a typed operator
// tree: scans, join-pipeline stages with explicit access paths, semi/anti
// subquery checks, group-by, set operations, distinct, sort, limit, and the
// recursive fixpoint. The streaming executor (internal/exec) interprets the
// tree with an Open/Next/Close iterator protocol over small row batches;
// shapes the lowering cannot stream fall back to a box-eval bridge operator
// that materializes through the classic evaluator.
//
// The split mirrors the architecture transformation-based optimizers assume
// (a logical rewrite graph above an explicit physical operator tree) and is
// what makes LIMIT and EXISTS/NOT EXISTS true early-exit: a consumer that
// stops pulling stops the whole spine.
package plan

import (
	"fmt"
	"strings"
	"time"

	"starmagic/internal/qgm"
)

// OpKind enumerates physical operators.
type OpKind uint8

// Physical operator kinds.
const (
	// OpScan streams a base table in batches.
	OpScan OpKind = iota
	// OpSelect is the join pipeline of one select box: a streamed driving
	// stage followed by hash/index/nested-loop stages, subquery checks, and
	// projection.
	OpSelect
	// OpGroupBy is a pipeline breaker: it drains its input into grouped
	// aggregate state and streams the groups out.
	OpGroupBy
	// OpUnion streams its inputs in order.
	OpUnion
	// OpIntersect materializes the right input's counts and streams the left.
	OpIntersect
	// OpExcept materializes the right input's counts and streams the left.
	OpExcept
	// OpDistinct filters duplicates with streaming seen-set state.
	OpDistinct
	// OpSort is a pipeline breaker implementing top-level ORDER BY.
	OpSort
	// OpLimit stops pulling from its child once N rows have been delivered;
	// the stop propagates down the streaming spine.
	OpLimit
	// OpTrim drops trailing hidden ORDER BY support columns.
	OpTrim
	// OpFixpoint evaluates a recursive view by semi-naive iteration (a
	// pipeline breaker) and streams the fixpoint out.
	OpFixpoint
	// OpBoxEval bridges to the classic evaluator: the box is materialized
	// (and memoized when closed) rather than streamed. Used for correlated
	// subtrees, shared common subexpressions, and extension box kinds.
	OpBoxEval
)

func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "scan"
	case OpSelect:
		return "select"
	case OpGroupBy:
		return "group-by"
	case OpUnion:
		return "union"
	case OpIntersect:
		return "intersect"
	case OpExcept:
		return "except"
	case OpDistinct:
		return "distinct"
	case OpSort:
		return "sort"
	case OpLimit:
		return "limit"
	case OpTrim:
		return "trim"
	case OpFixpoint:
		return "fixpoint"
	case OpBoxEval:
		return "materialize"
	}
	return "?"
}

// AccessKind is the access path of one join-pipeline stage.
type AccessKind uint8

// Stage access paths.
const (
	// AccessStream pulls the child operator batch by batch (driving stage).
	AccessStream AccessKind = iota
	// AccessIndex probes a base-table hash index per outer binding.
	AccessIndex
	// AccessHash builds a transient hash table once and probes it per outer
	// binding (the build is the stage's pipeline-breaker state).
	AccessHash
	// AccessScan rescans the materialized child rows per outer binding
	// (nested loop).
	AccessScan
	// AccessCorr re-evaluates a correlated child box per outer binding
	// through the classic evaluator.
	AccessCorr
)

func (a AccessKind) String() string {
	switch a {
	case AccessStream:
		return "stream"
	case AccessIndex:
		return "index"
	case AccessHash:
		return "hash"
	case AccessScan:
		return "nested-loop"
	case AccessCorr:
		return "correlated"
	}
	return "?"
}

// Stage is one join-pipeline stage of an OpSelect node: it binds Quant to
// each qualifying row of its child under the bindings of the previous
// stages.
type Stage struct {
	Quant  *qgm.Quantifier
	Access AccessKind
	// IndexCols are the base-table columns probed when Access is AccessIndex.
	IndexCols []int
	// KeyMine/KeyOther are the equality key pairs for hash/index access:
	// KeyMine[i] references only Quant, KeyOther[i] only prior stages.
	KeyMine, KeyOther []qgm.Expr
	// Residual predicates are evaluated with Quant bound (filters).
	Residual []qgm.Expr
	// Child is the operator producing the stage's input rows.
	Child *Node
}

// SubqMode selects how an Exists/ForAll quantifier check executes.
type SubqMode uint8

// Subquery check modes.
const (
	// SubqBridge evaluates the subquery through the classic evaluator
	// (memoized per correlation binding) and applies the match predicates
	// row by row, short-circuiting at the first decisive row.
	SubqBridge SubqMode = iota
	// SubqFirstMatch streams the subquery operator tree and stops pulling at
	// the first decisive row — the semi/anti-join early exit. Only
	// uncorrelated checks (constant across outer bindings) lower to this.
	SubqFirstMatch
)

// Subquery is one Exists (semi-join) or ForAll (anti-join) check of an
// OpSelect node.
type Subquery struct {
	Quant *qgm.Quantifier
	Match []qgm.Expr
	Mode  SubqMode
	// Child is the subquery operator tree (streamed for SubqFirstMatch;
	// display-only for SubqBridge).
	Child *Node
}

// Node is one physical operator. The tree is immutable after lowering; all
// per-execution state (iterators, hash tables, counters) lives in the
// executor, keyed by Node.ID.
type Node struct {
	ID   int
	Kind OpKind
	// Box is the QGM box this operator implements (nil for the top-level
	// sort/limit/trim wrappers).
	Box *qgm.Box
	// Label and Detail are the EXPLAIN rendering: operator identity and the
	// access-path summary.
	Label  string
	Detail string
	// EstRows is the optimizer's cardinality estimate for this operator's
	// output.
	EstRows float64
	// EstMem is a coarse estimate, in bytes, of the operator's resident
	// output (EstRows × estimated row width). The executor compares it
	// against the query's memory budget to pre-pick spill-capable variants
	// — e.g. a sort whose input estimate already exceeds the budget flushes
	// bounded runs eagerly instead of waiting for the first denied
	// reservation.
	EstMem float64
	// Children are the operator inputs in execution order. For OpSelect they
	// are the stage children followed by streamed subquery children.
	Children []*Node

	// OpSelect payload.
	ConstPreds []qgm.Expr // stage-0 predicates (constant under no bindings)
	Stages     []Stage
	Scalars    []*qgm.Quantifier
	Subqs      []Subquery
	PostPreds  []qgm.Expr

	// OpLimit payload.
	N int64
	// OpSort payload.
	OrderBy []qgm.OrderSpec
	// OpTrim payload.
	Hidden int

	// BoxRoot marks the node that completes its box's semantics (for a
	// DISTINCT select box that is the distinct wrapper, not the join
	// pipeline). The executor counts BoxEvals/OutputRows and enforces the
	// row budget at box roots, once per box, matching the classic
	// evaluator's accounting.
	BoxRoot bool

	// Vec marks an operator the lowering judged vectorizable: a select
	// pipeline whose driving stage streams a base-table scan, whose later
	// stages are all hash joins on at most vec.MaxKeyCols column/constant
	// keys, and whose driving-stage filters compile to column kernels. The
	// executor makes the final call at build time (it re-verifies against
	// runtime types and the memory mode) and records the outcome in
	// OpStats.Vectorized; a planned-but-not-executed vectorization falls
	// back to the row pipeline with identical semantics.
	Vec bool
}

// Plan is a lowered query: the operator tree plus the flat node list the
// executor uses to allocate per-run counters.
type Plan struct {
	Root  *Node
	Nodes []*Node // indexed by Node.ID
	Graph *qgm.Graph
}

// OpStats are one operator's per-execution counters. The executor allocates
// one slice per run (plans are shared across concurrent executions), so the
// numbers describe exactly one execution.
type OpStats struct {
	Opens   int64
	Batches int64
	Rows    int64
	// Nanos is inclusive wall-clock (children's time included), as in
	// EXPLAIN ANALYZE conventions.
	Nanos int64
	// Spills counts spill-to-disk events attributed to this operator under
	// a memory budget (hash-partition page-outs, sort-run flushes, row-
	// buffer flushes); SpillBytes is the bytes written by those events.
	Spills     int64
	SpillBytes int64
	// Vectorized reports that the operator actually executed on the
	// columnar fast path this run (set by the executor at open; false when
	// a planned vectorization fell back to the row pipeline).
	Vectorized bool
}

// newNode allocates a node registered in the plan.
func (p *Plan) newNode(kind OpKind, box *qgm.Box, label string) *Node {
	n := &Node{ID: len(p.Nodes), Kind: kind, Box: box, Label: label}
	p.Nodes = append(p.Nodes, n)
	return n
}

// Format renders the operator tree. With stats (one entry per node, from an
// execution) each line carries actual rows/batches/time; with nil stats the
// estimates alone are shown.
func (p *Plan) Format(stats []OpStats) string {
	var sb strings.Builder
	var walk func(n *Node, prefix string, last bool, top bool)
	walk = func(n *Node, prefix string, last bool, top bool) {
		line := prefix
		childPrefix := prefix
		if !top {
			if last {
				line += "└─ "
				childPrefix += "   "
			} else {
				line += "├─ "
				childPrefix += "│  "
			}
		}
		line += n.Label
		if n.Detail != "" {
			line += " [" + n.Detail + "]"
		}
		if n.EstRows > 0 && (stats == nil || n.ID >= len(stats)) {
			line += fmt.Sprintf(" (est %.0f)", n.EstRows)
		}
		if stats != nil && n.ID < len(stats) {
			st := stats[n.ID]
			line += fmt.Sprintf("  rows=%d", st.Rows)
			if n.EstRows > 0 {
				line += fmt.Sprintf(" est_rows=%.0f", n.EstRows)
				if q := qError(n.EstRows, st.Rows); q > 0 {
					line += fmt.Sprintf(" q=%.1f", q)
				}
			}
			line += fmt.Sprintf(" batches=%d", st.Batches)
			if st.Batches > 0 {
				line += fmt.Sprintf(" rows_per_batch=%.1f", float64(st.Rows)/float64(st.Batches))
			}
			if n.Vec || st.Vectorized {
				line += fmt.Sprintf(" vectorized=%v", st.Vectorized)
			}
			if st.Nanos > 0 {
				line += fmt.Sprintf(" time=%v", time.Duration(st.Nanos).Round(time.Microsecond))
			}
			if st.Spills > 0 {
				line += fmt.Sprintf(" spills=%d spill_bytes=%d", st.Spills, st.SpillBytes)
			}
		} else if n.Vec {
			line += " [vectorizable]"
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1, false)
		}
	}
	walk(p.Root, "", true, true)
	if stats != nil {
		if q := p.MaxQError(stats); q > 0 {
			fmt.Fprintf(&sb, "max q-error: %.1fx\n", q)
		}
	}
	return sb.String()
}

// String renders the tree without execution counters.
func (p *Plan) String() string { return p.Format(nil) }

// qError is the symmetric estimation error max(est/actual, actual/est), the
// standard measure of cardinality-estimate quality; both sides are floored
// at one row so an empty operator does not divide by zero. 1.0 is a perfect
// estimate.
func qError(est float64, actual int64) float64 {
	a := float64(actual)
	if a < 1 {
		a = 1
	}
	if est < 1 {
		est = 1
	}
	if est > a {
		return est / a
	}
	return a / est
}

// MaxQError returns the worst per-operator q-error of one execution: the
// plan-level signal execution feedback compares against its re-optimization
// threshold, and the number EXPLAIN prints after the operator tree. Operators
// that never opened (short-circuited subtrees) and operators without an
// estimate are skipped; 0 means no operator qualified.
func (p *Plan) MaxQError(stats []OpStats) float64 {
	maxQ := 0.0
	for _, n := range p.Nodes {
		if n.ID >= len(stats) || n.EstRows <= 0 || stats[n.ID].Opens == 0 {
			continue
		}
		if q := qError(n.EstRows, stats[n.ID].Rows); q > maxQ {
			maxQ = q
		}
	}
	return maxQ
}

// HasLimit reports whether the plan contains a LIMIT operator. Execution
// feedback skips such plans: a truncated run's actual row counts describe the
// early exit, not the operators' true cardinalities, and learning from them
// would poison the estimates.
func (p *Plan) HasLimit() bool {
	for _, n := range p.Nodes {
		if n.Kind == OpLimit {
			return true
		}
	}
	return false
}

// OpReport is one operator's flattened explain entry (depth-first order),
// the structured counterpart of Format for tools and metrics.
type OpReport struct {
	ID      int
	Depth   int
	Kind    string
	Label   string
	Detail  string
	EstRows float64
	Rows    int64
	Batches int64
	Nanos   int64
	// Spills/SpillBytes mirror OpStats: spill-to-disk events attributed to
	// this operator under a memory budget.
	Spills     int64
	SpillBytes int64
	// Vectorized reports the columnar fast path actually ran for this
	// operator; RowsPerBatch is the operator's mean output batch size (0
	// when it produced no batches).
	Vectorized   bool
	RowsPerBatch float64
}

// Report flattens the tree (with optional per-run stats) into OpReports.
func (p *Plan) Report(stats []OpStats) []OpReport {
	var out []OpReport
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		r := OpReport{
			ID: n.ID, Depth: depth, Kind: n.Kind.String(),
			Label: n.Label, Detail: n.Detail, EstRows: n.EstRows,
		}
		if stats != nil && n.ID < len(stats) {
			r.Rows = stats[n.ID].Rows
			r.Batches = stats[n.ID].Batches
			r.Nanos = stats[n.ID].Nanos
			r.Spills = stats[n.ID].Spills
			r.SpillBytes = stats[n.ID].SpillBytes
			r.Vectorized = stats[n.ID].Vectorized
			if r.Batches > 0 {
				r.RowsPerBatch = float64(r.Rows) / float64(r.Batches)
			}
		}
		out = append(out, r)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return out
}
