package wire

import (
	"net"
	"sync"
	"testing"
	"time"
)

// TestServeTCP runs the real listener path end to end: Serve on a loopback
// listener, a TCP client round-trip, then Close drains and Serve returns.
func TestServeTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(testDB(t), Config{User: "root", Password: "pw"})
	var wg sync.WaitGroup
	wg.Add(1)
	var serveErr error
	go func() {
		defer wg.Done()
		serveErr = srv.Serve(ln)
	}()

	nc, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(nc, "root", "pw")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Query(`SELECT d.deptname FROM dept d WHERE d.deptno = 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Value != "Planning" {
		t.Fatalf("rows = %v", rs.Rows)
	}
	_ = c.Quit()
	_ = nc.Close()

	srv.Close()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("Serve returned %v after Close", serveErr)
	}
}

// TestMaxConnsRefusal checks the connection cap answers ER_CON_COUNT_ERROR.
func TestMaxConnsRefusal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(testDB(t), Config{MaxConns: 1})
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	nc1, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = nc1.Close() }()
	c1, err := NewClient(nc1, "u", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}

	// The second connection must be refused with the MySQL error.
	deadline := time.Now().Add(2 * time.Second)
	for {
		nc2, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		_, err = NewClient(nc2, "u", "")
		_ = nc2.Close()
		if ce, ok := err.(*ClientError); ok && ce.Code == errConCount {
			return
		}
		// The accept loop may not have observed conn 1 as active yet
		// (ServeConn increments after Accept returns); retry briefly.
		if time.Now().After(deadline) {
			t.Fatalf("second connection not refused: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
