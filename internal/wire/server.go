package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"starmagic"
	"starmagic/internal/obs"
)

// Config configures a Server.
type Config struct {
	// User and Password authenticate clients (mysql_native_password). An
	// empty User accepts any username; an empty Password accepts clients
	// that send no password.
	User     string
	Password string
	// MaxConns caps concurrently served connections; 0 means unlimited.
	// This bounds goroutines per connection — per-query concurrency is
	// governed separately by the database's admission queue, which every
	// wire query execution passes through.
	MaxConns int
}

// Server serves the MySQL client/server protocol over a starmagic database.
// Each accepted connection runs in its own goroutine; query execution
// inside a connection flows through the database's admission queue and
// memory governor exactly like embedded use, so wire clients and embedded
// callers share one set of resource controls.
type Server struct {
	db       *starmagic.DB
	user     string
	password string
	maxConns int

	metrics obs.WireSink

	mu      sync.Mutex
	ln      net.Listener
	closed  bool
	cancel  context.CancelFunc
	baseCtx context.Context
	wg      sync.WaitGroup
	active  atomic.Int64
	connSeq atomic.Uint32
}

// NewServer wraps db in a wire server. The database stays fully usable
// through the embedded API while served.
func NewServer(db *starmagic.DB, cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:       db,
		user:     cfg.User,
		password: cfg.Password,
		maxConns: cfg.MaxConns,
		baseCtx:  ctx,
		cancel:   cancel,
	}
}

// Serve accepts connections from ln until Close. It returns nil after Close;
// any other listener error is returned as-is.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("wire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if s.maxConns > 0 && s.active.Load() >= int64(s.maxConns) {
			// Over the connection cap: answer with the same error a full
			// MySQL server gives and drop the transport.
			go refuseConn(nc)
			continue
		}
		s.startConn(nc)
	}
}

// ListenAndServe listens on addr (e.g. ":3306") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ServeConn serves one already-established connection synchronously; it
// returns when the client disconnects. Tests drive the protocol through
// net.Pipe with it.
func (s *Server) ServeConn(nc net.Conn) {
	c := &conn{srv: s, ctx: s.baseCtx, id: s.connSeq.Add(1)}
	s.active.Add(1)
	defer s.active.Add(-1)
	c.serve(nc)
}

func (s *Server) startConn(nc net.Conn) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.ServeConn(nc)
	}()
}

// refuseConn performs enough of the handshake to deliver ER_CON_COUNT_ERROR
// before dropping an over-cap connection.
func refuseConn(nc net.Conn) {
	defer func() { _ = nc.Close() }()
	pc := newPacketConn(nc)
	code := uint16(errConCount)
	payload := []byte{0xff, byte(code), byte(code >> 8), '#'}
	payload = append(payload, "08004"...)
	payload = append(payload, "Too many connections"...)
	_ = pc.writePacket(payload)
	_ = pc.flush()
}

// Close stops accepting, cancels in-flight query contexts, and waits for
// connection goroutines to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.cancel()
	s.wg.Wait()
}

// Metrics returns a snapshot of the server's wire-level activity counters.
func (s *Server) Metrics() obs.WireMetrics { return s.metrics.Snapshot() }

// ActiveConns reports the number of connections currently being served.
func (s *Server) ActiveConns() int64 { return s.active.Load() }
