package wire

import (
	"context"
	"errors"
	"fmt"

	"starmagic"
)

// MySQL error numbers the server emits. Each starmagic typed error maps onto
// the errno/SQLSTATE pair a real MySQL server would use for the analogous
// condition, so client drivers surface them through their native error
// classes (syntax error, unknown table, too many connections, ...).
const (
	errUnknown          = 1105 // ER_UNKNOWN_ERROR
	errParse            = 1064 // ER_PARSE_ERROR
	errNoSuchTable      = 1146 // ER_NO_SUCH_TABLE
	errBadField         = 1054 // ER_BAD_FIELD_ERROR
	errParamCount       = 1210 // ER_WRONG_ARGUMENTS
	errOutOfMemory      = 1038 // ER_OUT_OF_SORTMEMORY
	errConCount         = 1040 // ER_CON_COUNT_ERROR
	errServerShutdown   = 1053 // ER_SERVER_SHUTDOWN
	errQueryInterrupted = 1317 // ER_QUERY_INTERRUPTED
	errUnknownStmt      = 1243 // ER_UNKNOWN_STMT_HANDLER
	errAccessDenied     = 1045 // ER_ACCESS_DENIED_ERROR
	errLockDeadlock     = 1213 // ER_LOCK_DEADLOCK: serialization failure, retry
	errMalformedPacket  = 1835 // ER_MALFORMED_PACKET
)

// mysqlError carries a fully resolved wire error: number, SQLSTATE, message.
type mysqlError struct {
	code     uint16
	sqlState string
	message  string
}

// mapError resolves any engine or protocol error to its wire representation
// via the typed error surface of the starmagic root package — the reason
// that surface exists. Unrecognized errors become ER_UNKNOWN_ERROR with the
// error text preserved.
func mapError(err error) mysqlError {
	var me mysqlError
	if errors.As(err, &me) {
		return me
	}
	var parse *starmagic.ParseError
	if errors.As(err, &parse) {
		return mysqlError{errParse, "42000",
			fmt.Sprintf("You have an error in your SQL syntax (line %d col %d): %s",
				parse.Line, parse.Col, parse.Msg)}
	}
	var nf *starmagic.NotFoundError
	if errors.As(err, &nf) {
		if nf.Kind == "table" {
			return mysqlError{errNoSuchTable, "42S02", err.Error()}
		}
		return mysqlError{errBadField, "42S22", err.Error()}
	}
	var pc *starmagic.ParamCountError
	if errors.As(err, &pc) {
		return mysqlError{errParamCount, "HY000", err.Error()}
	}
	switch {
	case errors.Is(err, starmagic.ErrWriteConflict):
		// MySQL reports serialization failures as ER_LOCK_DEADLOCK with
		// SQLSTATE 40001; drivers translate that into their retryable class.
		return mysqlError{errLockDeadlock, "40001", err.Error()}
	case errors.Is(err, starmagic.ErrMemoryExceeded):
		return mysqlError{errOutOfMemory, "HY001", err.Error()}
	case errors.Is(err, starmagic.ErrAdmissionRejected):
		return mysqlError{errConCount, "08004", err.Error()}
	case errors.Is(err, starmagic.ErrClosed):
		return mysqlError{errServerShutdown, "08S01", err.Error()}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return mysqlError{errQueryInterrupted, "70100", "Query execution was interrupted"}
	}
	return mysqlError{errUnknown, "HY000", err.Error()}
}

func (e mysqlError) Error() string {
	return fmt.Sprintf("ERROR %d (%s): %s", e.code, e.sqlState, e.message)
}

// errUnknownStmtHandler builds the ER_UNKNOWN_STMT_HANDLER error for a
// statement id the server has no registration for.
func errUnknownStmtHandler(id uint32) mysqlError {
	return mysqlError{errUnknownStmt, "HY000",
		fmt.Sprintf("Unknown prepared statement handler (%d) given", id)}
}
