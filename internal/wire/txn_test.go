package wire

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"starmagic"
)

// TestWireTransactionStatusFlags checks the SERVER_STATUS_IN_TRANS lifecycle
// in OK packets and snapshot isolation between two connections.
func TestWireTransactionStatusFlags(t *testing.T) {
	srv := NewServer(testDB(t), Config{})
	a := connect(t, srv, "u", "")
	b := connect(t, srv, "u", "")

	_, status, err := a.ExecStatus("BEGIN")
	if err != nil {
		t.Fatal(err)
	}
	if status&statusInTrans == 0 || status&statusAutocommit == 0 {
		t.Fatalf("status after BEGIN = %#x, want in-trans|autocommit", status)
	}
	if _, status, err = a.ExecStatus(`INSERT INTO dept VALUES (50, 'Txn')`); err != nil {
		t.Fatal(err)
	}
	if status&statusInTrans == 0 {
		t.Fatalf("status mid-txn = %#x, want in-trans", status)
	}

	// a sees its own write; b does not until COMMIT.
	rs, err := a.Query(`SELECT d.deptname FROM dept d WHERE d.deptno = 50`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("read-your-writes failed: %v", rs.Rows)
	}
	rs, err = b.Query(`SELECT d.deptname FROM dept d WHERE d.deptno = 50`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Fatalf("uncommitted write visible to other connection: %v", rs.Rows)
	}

	if _, status, err = a.ExecStatus("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if status&statusInTrans != 0 {
		t.Fatalf("status after COMMIT = %#x, want in-trans cleared", status)
	}
	rs, err = b.Query(`SELECT d.deptname FROM dept d WHERE d.deptno = 50`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Value != "Txn" {
		t.Fatalf("committed write invisible: %v", rs.Rows)
	}

	// ROLLBACK discards.
	if _, _, err = a.ExecStatus("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(`DELETE FROM dept WHERE deptno = 50`); err != nil {
		t.Fatal(err)
	}
	if _, status, err = a.ExecStatus("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if status&statusInTrans != 0 {
		t.Fatalf("status after ROLLBACK = %#x", status)
	}
	rs, err = b.Query(`SELECT d.deptname FROM dept d WHERE d.deptno = 50`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rolled-back delete applied: %v", rs.Rows)
	}

	// START TRANSACTION is BEGIN; COMMIT/ROLLBACK with no txn are no-op OKs.
	if _, status, err = a.ExecStatus("START TRANSACTION"); err != nil || status&statusInTrans == 0 {
		t.Fatalf("START TRANSACTION: status=%#x err=%v", status, err)
	}
	if _, _, err = a.ExecStatus("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if _, status, err = a.ExecStatus("COMMIT"); err != nil || status&statusInTrans != 0 {
		t.Fatalf("bare COMMIT: status=%#x err=%v", status, err)
	}
}

// TestWireWriteConflict1213 checks the MySQL mapping of a lost
// first-updater-wins race: errno 1213, SQLSTATE 40001, transaction rolled
// back server-side.
func TestWireWriteConflict1213(t *testing.T) {
	srv := NewServer(testDB(t), Config{})
	a := connect(t, srv, "u", "")
	b := connect(t, srv, "u", "")

	if _, err := a.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(`UPDATE emp SET salary = 60000 WHERE empno = 1`); err != nil {
		t.Fatal(err)
	}
	_, err := b.Exec(`UPDATE emp SET salary = 70000 WHERE empno = 1`)
	ce, ok := err.(*ClientError)
	if !ok {
		t.Fatalf("conflicting update: %v, want ClientError", err)
	}
	if ce.Code != 1213 || ce.SQLState != "40001" {
		t.Fatalf("conflict error = %d (%s), want 1213 (40001)", ce.Code, ce.SQLState)
	}

	// b's transaction was rolled back server-side: the next OK shows
	// autocommit mode, and a's commit wins.
	_, status, err := b.ExecStatus(`INSERT INTO dept VALUES (60, 'After')`)
	if err != nil {
		t.Fatal(err)
	}
	if status&statusInTrans != 0 {
		t.Fatalf("status after conflict rollback = %#x, want autocommit", status)
	}
	if _, err := a.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	rs, err := b.Query(`SELECT e.salary FROM emp e WHERE e.empno = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Value != "60000" {
		t.Fatalf("winner's update lost: %v", rs.Rows)
	}
}

// TestWireMidStreamDML is the streaming-read regression test: with a 20k-row
// result set half-read on one connection, DML on another connection must
// commit within a bounded wait (the cursor holds no lock), and the reader
// must still drain exactly its snapshot.
func TestWireMidStreamDML(t *testing.T) {
	db := starmagic.Open()
	db.MustExec(`CREATE TABLE big (id INT, v VARCHAR)`)
	const n = 20000
	rows := make([]starmagic.Row, n)
	for i := range rows {
		rows[i] = starmagic.Row{starmagic.Int(int64(i)), starmagic.String(fmt.Sprintf("v-%d", i))}
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db, Config{})
	reader := connect(t, srv, "u", "")
	writer := connect(t, srv, "u", "")

	// Start the query by hand so the result set can be read incrementally:
	// column count, one column definition, EOF, then row packets on demand.
	if err := reader.command(comQuery, []byte(`SELECT b.id FROM big b`)); err != nil {
		t.Fatal(err)
	}
	header, err := reader.pc.readPacket()
	if err != nil {
		t.Fatal(err)
	}
	nCols, m, _ := readLenencInt(header)
	if m == 0 || nCols != 1 {
		t.Fatalf("result header: %v", header)
	}
	if _, err := reader.pc.readPacket(); err != nil { // column definition
		t.Fatal(err)
	}
	if _, err := reader.pc.readPacket(); err != nil { // EOF
		t.Fatal(err)
	}
	read := 0
	for ; read < n/2; read++ {
		if _, err := reader.pc.readPacket(); err != nil {
			t.Fatalf("row %d: %v", read, err)
		}
	}

	// Mid-stream: INSERT and DELETE from the writer connection, bounded.
	done := make(chan error, 1)
	go func() {
		if _, err := writer.Exec(`INSERT INTO big VALUES (999999, 'late')`); err != nil {
			done <- err
			return
		}
		_, err := writer.Exec(`DELETE FROM big WHERE id < 1000`)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("wire DML blocked behind an open streaming cursor")
	}

	// Drain the rest: exactly the snapshot's 20k rows, no more, no fewer.
	for {
		payload, err := reader.pc.readPacket()
		if err != nil {
			t.Fatal(err)
		}
		if isEOF(payload) {
			break
		}
		if payload[0] == 0xff {
			t.Fatalf("mid-stream error: %v", decodeErr(payload))
		}
		read++
	}
	if read != n {
		t.Fatalf("streamed %d rows, want %d", read, n)
	}

	// A fresh query on the reader connection sees the committed DML.
	rs, err := reader.Query(`SELECT COUNT(*) FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	want := strconv.Itoa(n - 1000 + 1)
	if len(rs.Rows) != 1 || rs.Rows[0][0].Value != want {
		t.Fatalf("post-DML count = %v, want %s", rs.Rows, want)
	}
}

// TestWireReaderWriterOracle: wire-path writers append (w, s) rows in
// per-writer sequence order while wire-path readers scan concurrently;
// every scan must see a clean per-writer prefix (count == max seq + 1).
// Run under -race via make race.
func TestWireReaderWriterOracle(t *testing.T) {
	db := starmagic.Open()
	db.MustExec(`CREATE TABLE log (w INT, s INT)`)
	srv := NewServer(db, Config{})

	const writers, perWriter, readers = 3, 60, 2
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := NewClient(startPipe(t, srv), "u", "")
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = c.Quit() }()
			for s := 0; s < perWriter; s++ {
				if _, err := c.Exec(fmt.Sprintf(`INSERT INTO log VALUES (%d, %d)`, w, s)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			c, err := NewClient(startPipe(t, srv), "u", "")
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = c.Quit() }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rs, err := c.Query(`SELECT l.w, COUNT(*), MAX(l.s) FROM log l GROUP BY l.w`)
				if err != nil {
					errCh <- err
					return
				}
				for _, row := range rs.Rows {
					count, _ := strconv.Atoi(row[1].Value)
					max, _ := strconv.Atoi(row[2].Value)
					if count != max+1 {
						errCh <- fmt.Errorf("writer %s: count %d != max+1 %d (torn snapshot)",
							row[0].Value, count, max+1)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestWireTxnStress runs 8 connections mixing BEGIN/COMMIT/ROLLBACK,
// autocommit DML, conflicts, and snapshot reads; the conservation invariant
// must hold on every read. Run under -race via make race.
func TestWireTxnStress(t *testing.T) {
	db := starmagic.Open()
	db.MustExec(`
	CREATE TABLE account (id INT, balance INT, PRIMARY KEY (id));
	INSERT INTO account VALUES (1, 1000), (2, 1000), (3, 1000), (4, 1000);`)
	srv := NewServer(db, Config{})

	const conns = 8
	const opsPerConn = 25
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := NewClient(startPipe(t, srv), "u", "")
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = c.Quit() }()
			src, dst := 1+i%4, 1+(i+1)%4
			for op := 0; op < opsPerConn; op++ {
				switch op % 3 {
				case 0: // transfer in an explicit transaction, retry on 1213
					for {
						if _, err := c.Exec("BEGIN"); err != nil {
							errCh <- err
							return
						}
						_, err := c.Exec(fmt.Sprintf(
							`UPDATE account SET balance = balance - 10 WHERE id = %d`, src))
						if err == nil {
							_, err = c.Exec(fmt.Sprintf(
								`UPDATE account SET balance = balance + 10 WHERE id = %d`, dst))
						}
						if err == nil {
							if _, err = c.Exec("COMMIT"); err != nil {
								errCh <- err
								return
							}
							break
						}
						if ce, ok := err.(*ClientError); !ok || ce.Code != 1213 {
							errCh <- fmt.Errorf("transfer: %v", err)
							return
						}
						// 1213 rolled the transaction back server-side.
					}
				case 1: // transaction opened and abandoned via ROLLBACK
					if _, err := c.Exec("BEGIN"); err != nil {
						errCh <- err
						return
					}
					if _, err := c.Exec(fmt.Sprintf(
						`INSERT INTO account VALUES (%d, 0)`, 100+i*1000+op)); err != nil {
						errCh <- err
						return
					}
					if _, err := c.Exec("ROLLBACK"); err != nil {
						errCh <- err
						return
					}
				case 2: // snapshot read: conservation must hold
					rs, err := c.Query(`SELECT SUM(a.balance) FROM account a WHERE a.id <= 4`)
					if err != nil {
						errCh <- err
						return
					}
					if len(rs.Rows) != 1 || rs.Rows[0][0].Value != "4000" {
						errCh <- fmt.Errorf("balance sum = %v, want 4000", rs.Rows)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// Rolled-back inserts must not exist; conservation holds at rest.
	rs, err := connect(t, srv, "u", "").Query(`SELECT COUNT(*), SUM(a.balance) FROM account a`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Value != "4" || rs.Rows[0][1].Value != "4000" {
		t.Fatalf("final state: %v", rs.Rows)
	}
}
