package wire

import (
	"strconv"

	"starmagic"
	"starmagic/internal/datum"
)

// This file writes the generic response packets (OK, ERR, EOF) and streams
// result sets. A result set is: column count, one ColumnDefinition41 per
// column, EOF, then one row packet per row pulled from the cursor, then EOF
// — the classic framing. Rows are written as they are pulled from
// starmagic's streaming Rows cursor, so the result set crosses the wire
// packet by packet without ever materializing server-side.

// status returns the server status flags for OK/EOF packets: autocommit is
// always advertised (it reflects @@autocommit, which this server pins to 1),
// and SERVER_STATUS_IN_TRANS is added while an explicit transaction is open
// — how clients and connectors track transaction state.
func (c *conn) status() uint16 {
	s := uint16(statusAutocommit)
	if c.txn != nil {
		s |= statusInTrans
	}
	return s
}

// writeOK emits an OK packet with affected-row count.
func (c *conn) writeOK(affected uint64) error {
	status := c.status()
	b := c.scratch[:0]
	b = append(b, 0x00)
	b = lenencInt(b, affected)
	b = lenencInt(b, 0) // last insert id
	b = append(b, byte(status), byte(status>>8))
	b = append(b, 0, 0) // warnings
	c.scratch = b
	return c.pc.writePacket(b)
}

// writeErr emits an ERR packet for the mapped error.
func (c *conn) writeErr(err error) error {
	me := mapError(err)
	c.sample.ErrorsSent++
	b := c.scratch[:0]
	b = append(b, 0xff)
	b = append(b, byte(me.code), byte(me.code>>8))
	b = append(b, '#')
	b = append(b, me.sqlState...)
	b = append(b, me.message...)
	c.scratch = b
	if werr := c.pc.writePacket(b); werr != nil {
		return werr
	}
	return c.pc.flush()
}

// writeEOF emits a classic EOF packet.
func (c *conn) writeEOF() error {
	status := c.status()
	return c.pc.writePacket([]byte{0xfe, 0, 0, byte(status), byte(status >> 8)})
}

// writeColumnDef emits one ColumnDefinition41. Every column is declared
// VAR_STRING (see the package comment for why).
func (c *conn) writeColumnDef(name string) error {
	b := c.scratch[:0]
	b = lenencStr(b, "def") // catalog
	b = lenencStr(b, "")    // schema
	b = lenencStr(b, "")    // table
	b = lenencStr(b, "")    // org_table
	b = lenencStr(b, name)  // name
	b = lenencStr(b, name)  // org_name
	b = append(b, 0x0c)     // fixed-length fields marker
	b = append(b, charsetUTF8MB4, 0)
	b = append(b, 0xff, 0xff, 0, 0) // column length
	b = append(b, typeVarString)
	b = append(b, 0, 0) // flags
	b = append(b, 0)    // decimals
	b = append(b, 0, 0) // filler
	c.scratch = b
	return c.pc.writePacket(b)
}

// wireText renders one datum for the wire: integers in decimal, floats in
// shortest round-trip form, strings raw, booleans as MySQL's 1/0.
func wireText(b []byte, d datum.D) []byte {
	switch d.T {
	case datum.TInt:
		return strconv.AppendInt(b, d.I, 10)
	case datum.TFloat:
		return strconv.AppendFloat(b, d.F, 'g', -1, 64)
	case datum.TString:
		return append(b, d.S...)
	case datum.TBool:
		if d.B {
			return append(b, '1')
		}
		return append(b, '0')
	}
	return b
}

// writeResultSet streams the cursor to the client and closes it: header,
// column definitions, EOF, rows (text or binary per protocol), EOF. The
// cursor is always Closed before returning; a mid-stream engine error
// surfaces as a trailing ERR packet (the client sees the rows already sent,
// then the error — exactly MySQL's behavior for errors during streaming).
func (c *conn) writeResultSet(rows *starmagic.Rows, binary bool) error {
	defer rows.Close()
	cols := rows.Columns()
	if err := c.pc.writePacket(lenencInt(c.scratch[:0], uint64(len(cols)))); err != nil {
		return err
	}
	for _, name := range cols {
		if err := c.writeColumnDef(name); err != nil {
			return err
		}
	}
	if err := c.writeEOF(); err != nil {
		return err
	}
	var rowBuf []byte
	for rows.Next() {
		rowBuf = rowBuf[:0]
		if binary {
			rowBuf = appendBinaryRow(rowBuf, rows.Row())
		} else {
			rowBuf = appendTextRow(rowBuf, rows.Row())
		}
		if err := c.pc.writePacket(rowBuf); err != nil {
			return err
		}
		c.sample.RowsSent++
	}
	if err := rows.Err(); err != nil {
		return c.writeErr(err)
	}
	if err := c.writeEOF(); err != nil {
		return err
	}
	return c.pc.flush()
}

// appendTextRow encodes one text-protocol row: each value a lenenc string,
// NULL as the 0xfb marker. Strings append directly; numerics render through
// a stack scratch buffer.
func appendTextRow(b []byte, row datum.Row) []byte {
	var scratch [32]byte
	for _, d := range row {
		switch {
		case d.IsNull():
			b = append(b, 0xfb)
		case d.T == datum.TString:
			b = lenencStr(b, d.S)
		default:
			v := wireText(scratch[:0], d)
			b = lenencInt(b, uint64(len(v)))
			b = append(b, v...)
		}
	}
	return b
}

// appendBinaryRow encodes one binary-protocol row: 0x00 header, NULL bitmap
// (bit i+2 for column i), then each non-NULL value. Values travel as lenenc
// strings because the columns are declared VAR_STRING.
func appendBinaryRow(b []byte, row datum.Row) []byte {
	b = append(b, 0x00)
	maskStart := len(b)
	maskLen := (len(row) + 7 + 2) / 8
	b = append(b, make([]byte, maskLen)...)
	var scratch [32]byte
	for i, d := range row {
		switch {
		case d.IsNull():
			bit := i + 2
			b[maskStart+bit/8] |= 1 << (bit % 8)
		case d.T == datum.TString:
			b = lenencStr(b, d.S)
		default:
			v := wireText(scratch[:0], d)
			b = lenencInt(b, uint64(len(v)))
			b = append(b, v...)
		}
	}
	return b
}
