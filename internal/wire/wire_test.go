package wire

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"starmagic"
)

// startPipe wires a client to a server over net.Pipe: the server side runs
// in a goroutine, and cleanup waits for it so -race sees the full exchange.
func startPipe(t *testing.T, srv *Server) net.Conn {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	t.Cleanup(func() {
		_ = clientSide.Close()
		<-done
	})
	return clientSide
}

func testDB(t *testing.T) *starmagic.DB {
	t.Helper()
	db := starmagic.Open()
	db.MustExec(`
	CREATE TABLE dept (deptno INT, deptname VARCHAR, PRIMARY KEY (deptno));
	CREATE TABLE emp (empno INT, deptno INT, salary FLOAT, active BOOLEAN, PRIMARY KEY (empno));
	INSERT INTO dept VALUES (10, 'Planning'), (20, 'Shipping'), (30, NULL);
	INSERT INTO emp VALUES (1, 10, 52750.5, TRUE), (2, 10, 41250.0, FALSE), (3, 20, 38000.25, TRUE), (4, NULL, NULL, NULL);`)
	return db
}

func connect(t *testing.T, srv *Server, user, password string) *Client {
	t.Helper()
	c, err := NewClient(startPipe(t, srv), user, password)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	return c
}

func TestHandshakeAndPing(t *testing.T) {
	srv := NewServer(testDB(t), Config{User: "root", Password: "secret"})
	c := connect(t, srv, "root", "secret")
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
}

func TestAuthFailure(t *testing.T) {
	srv := NewServer(testDB(t), Config{User: "root", Password: "secret"})
	attempt := func(user, password string) error {
		clientSide, serverSide := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.ServeConn(serverSide)
		}()
		_, err := NewClient(clientSide, user, password)
		_ = clientSide.Close()
		<-done // server goroutine has recorded the connection
		return err
	}
	err := attempt("root", "wrong")
	ce, ok := err.(*ClientError)
	if !ok || ce.Code != errAccessDenied || ce.SQLState != "28000" {
		t.Fatalf("bad password: %v", err)
	}
	if ce, ok := attempt("intruder", "secret").(*ClientError); !ok || ce.Code != errAccessDenied {
		t.Fatalf("bad user: %v", err)
	}
	// Failed handshakes show up in the metrics.
	if m := srv.Metrics(); m.ConnectionsFailed != 2 {
		t.Fatalf("ConnectionsFailed = %d, want 2", m.ConnectionsFailed)
	}
}

func TestComQueryResultSet(t *testing.T) {
	srv := NewServer(testDB(t), Config{})
	c := connect(t, srv, "anyone", "")
	rs, err := c.Query(`SELECT d.deptno, d.deptname FROM dept d ORDER BY d.deptno`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Columns) != 2 || rs.Columns[0] != "deptno" || rs.Columns[1] != "deptname" {
		t.Fatalf("columns = %v", rs.Columns)
	}
	want := [][]Cell{
		{{true, "10"}, {true, "Planning"}},
		{{true, "20"}, {true, "Shipping"}},
		{{true, "30"}, {false, ""}},
	}
	if len(rs.Rows) != len(want) {
		t.Fatalf("rows = %v", rs.Rows)
	}
	for i := range want {
		for j := range want[i] {
			if rs.Rows[i][j] != want[i][j] {
				t.Fatalf("row %d col %d = %+v, want %+v", i, j, rs.Rows[i][j], want[i][j])
			}
		}
	}
}

func TestComQueryExecAndSessionChatter(t *testing.T) {
	srv := NewServer(testDB(t), Config{})
	c := connect(t, srv, "u", "")
	for _, q := range []string{
		"SET NAMES utf8mb4", "USE anything", "BEGIN", "COMMIT",
	} {
		if _, err := c.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	n, err := c.Exec(`INSERT INTO dept VALUES (40, 'Research')`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("affected = %d, want 1", n)
	}
	rs, err := c.Query(`select @@version_comment limit 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Value != "starmagic" {
		t.Fatalf("@@version_comment = %v", rs.Rows)
	}
}

// TestStmtExecuteAllBindTypes round-trips a binary COM_STMT_EXECUTE with
// every client-side bind type the codec supports, NULL included.
func TestStmtExecuteAllBindTypes(t *testing.T) {
	db := starmagic.Open()
	db.MustExec(`CREATE TABLE vals (i INT, f FLOAT, s VARCHAR, b BOOLEAN)`)
	db.MustExec(`INSERT INTO vals VALUES (7, 2.5, 'seven', TRUE), (8, 3.5, 'eight', FALSE)`)
	srv := NewServer(db, Config{})
	c := connect(t, srv, "u", "")

	cases := []struct {
		arg  any
		want string // expected i column of matching row, "" for no rows
	}{
		{int64(7), "7"},
		{int32(7), "7"},
		{int(7), "7"},
		{float64(7), "7"},
		{float32(7), "7"},
		{nil, ""}, // i = NULL matches nothing
	}
	st, err := c.Prepare(`SELECT v.i FROM vals v WHERE v.i = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams != 1 {
		t.Fatalf("NumParams = %d", st.NumParams)
	}
	for _, tc := range cases {
		rs, err := c.Execute(st, tc.arg)
		if err != nil {
			t.Fatalf("execute %T(%v): %v", tc.arg, tc.arg, err)
		}
		if tc.want == "" {
			if len(rs.Rows) != 0 {
				t.Fatalf("bind %T(%v): rows = %v, want none", tc.arg, tc.arg, rs.Rows)
			}
			continue
		}
		if len(rs.Rows) != 1 || rs.Rows[0][0].Value != tc.want {
			t.Fatalf("bind %T(%v): rows = %v", tc.arg, tc.arg, rs.Rows)
		}
	}

	stS, err := c.Prepare(`SELECT v.i FROM vals v WHERE v.s = ?`)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Execute(stS, "eight")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Value != "8" {
		t.Fatalf("string bind: %v", rs.Rows)
	}
	if rs, err = c.Execute(stS, []byte("seven")); err != nil || len(rs.Rows) != 1 {
		t.Fatalf("blob bind: %v %v", rs, err)
	}
	// MySQL has no boolean wire type: clients bind bools as TINYINT 1/0,
	// which decode server-side as integers. BOOLEAN results render as 1/0.
	db.MustExec(`INSERT INTO vals VALUES (1, 0.0, 'one', TRUE)`)
	stB, err := c.Prepare(`SELECT v.b FROM vals v WHERE v.i = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if rs, err = c.Execute(stB, true); err != nil || len(rs.Rows) != 1 || rs.Rows[0][0].Value != "1" {
		t.Fatalf("bool bind: %v %v", rs, err)
	}
	stF, err := c.Prepare(`SELECT v.i FROM vals v WHERE v.f = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if rs, err = c.Execute(stF, 3.5); err != nil || len(rs.Rows) != 1 || rs.Rows[0][0].Value != "8" {
		t.Fatalf("float bind: %v %v", rs, err)
	}
	if err := c.StmtClose(st); err != nil {
		t.Fatal(err)
	}
	// A closed statement id answers ER_UNKNOWN_STMT_HANDLER.
	if _, err := c.Execute(st, int64(1)); err == nil {
		t.Fatal("execute after close succeeded")
	} else if ce, ok := err.(*ClientError); !ok || ce.Code != errUnknownStmt {
		t.Fatalf("execute after close: %v", err)
	}
}

// TestStmtExecuteHitsPlanCache is the acceptance criterion that
// COM_STMT_EXECUTE rides the engine's sharded plan cache: re-preparing the
// same SQL on a second connection must be a cache hit, not a fresh
// optimization.
func TestStmtExecuteHitsPlanCache(t *testing.T) {
	db := testDB(t)
	srv := NewServer(db, Config{})
	const q = `SELECT e.empno FROM emp e WHERE e.deptno = ?`

	c1 := connect(t, srv, "u", "")
	st1, err := c1.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Execute(st1, int64(10)); err != nil {
		t.Fatal(err)
	}
	before := db.PlanCacheStats()

	c2 := connect(t, srv, "u", "")
	st2, err := c2.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Execute(st2, int64(20)); err != nil {
		t.Fatal(err)
	}
	after := db.PlanCacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("second COM_STMT_PREPARE missed the plan cache: hits %d -> %d (misses %d -> %d)",
			before.Hits, after.Hits, before.Misses, after.Misses)
	}
	if after.Misses != before.Misses {
		t.Fatalf("second COM_STMT_PREPARE re-optimized: misses %d -> %d", before.Misses, after.Misses)
	}
}

// TestErrorPackets checks the errno/SQLSTATE mapping of the typed error
// surface, end to end through ERR packets.
func TestErrorPackets(t *testing.T) {
	srv := NewServer(testDB(t), Config{})
	c := connect(t, srv, "u", "")
	cases := []struct {
		query    string
		code     uint16
		sqlState string
	}{
		{`SELECT FROM WHERE`, errParse, "42000"},
		{`SELECT t.x FROM missing t`, errNoSuchTable, "42S02"},
		{`SELECT d.nope FROM dept d`, errBadField, "42S22"},
		{`SELECT d.deptno FROM dept d WHERE d.deptno = ?`, errParamCount, "HY000"},
	}
	for _, tc := range cases {
		_, err := c.Query(tc.query)
		ce, ok := err.(*ClientError)
		if !ok {
			t.Fatalf("%s: err = %v (%T)", tc.query, err, err)
		}
		if ce.Code != tc.code || ce.SQLState != tc.sqlState {
			t.Fatalf("%s: got %d/%s, want %d/%s (%s)",
				tc.query, ce.Code, ce.SQLState, tc.code, tc.sqlState, ce.Message)
		}
	}
	// The connection survives every error and keeps serving.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after errors: %v", err)
	}
}

// TestWireVsEmbeddedOracle runs the same queries through the wire text
// protocol, the wire binary protocol, and the embedded streaming cursor, and
// requires identical content from all three.
func TestWireVsEmbeddedOracle(t *testing.T) {
	db := testDB(t)
	srv := NewServer(db, Config{})
	c := connect(t, srv, "u", "")
	queries := []string{
		`SELECT d.deptno, d.deptname FROM dept d ORDER BY d.deptno`,
		`SELECT e.deptno, COUNT(*), AVG(e.salary) FROM emp e GROUP BY e.deptno ORDER BY e.deptno`,
		`SELECT e.empno, d.deptname FROM emp e, dept d WHERE e.deptno = d.deptno ORDER BY e.empno`,
		`SELECT e.active, e.salary FROM emp e ORDER BY e.empno`,
	}
	for _, q := range queries {
		rows, err := db.QueryRows(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		var want [][]Cell
		for rows.Next() {
			row := rows.Row()
			cells := make([]Cell, len(row))
			for i, d := range row {
				if d.IsNull() {
					continue
				}
				cells[i] = Cell{Valid: true, Value: string(wireText(nil, d))}
			}
			want = append(want, cells)
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		_ = rows.Close()

		check := func(proto string, rs *Resultset) {
			if len(rs.Rows) != len(want) {
				t.Fatalf("%s %s: %d rows, want %d", proto, q, len(rs.Rows), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if rs.Rows[i][j] != want[i][j] {
						t.Fatalf("%s %s: row %d col %d = %+v, want %+v",
							proto, q, i, j, rs.Rows[i][j], want[i][j])
					}
				}
			}
		}
		rs, err := c.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		check("text", rs)
		st, err := c.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		brs, err := c.Execute(st)
		if err != nil {
			t.Fatal(err)
		}
		check("binary", brs)
	}
}

// TestConcurrentConnections hammers one server from many connections; run
// under -race it checks the server, the cursor path, and the metrics sink
// share no unsynchronized state.
func TestConcurrentConnections(t *testing.T) {
	db := testDB(t)
	db.SetAdmission(4, 64)
	srv := NewServer(db, Config{})
	const conns = 8
	var wg, srvWg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		clientSide, serverSide := net.Pipe()
		wg.Add(1)
		srvWg.Add(1)
		go func(nc net.Conn) {
			defer srvWg.Done()
			srv.ServeConn(nc)
		}(serverSide)
		go func(nc net.Conn, n int) {
			defer wg.Done()
			defer func() { _ = nc.Close() }()
			c, err := NewClient(nc, "u", "")
			if err != nil {
				errs <- err
				return
			}
			for k := 0; k < 20; k++ {
				rs, err := c.Query(`SELECT e.empno FROM emp e ORDER BY e.empno`)
				if err != nil {
					errs <- fmt.Errorf("conn %d query %d: %w", n, k, err)
					return
				}
				if len(rs.Rows) != 4 {
					errs <- fmt.Errorf("conn %d query %d: %d rows", n, k, len(rs.Rows))
					return
				}
				st, err := c.Prepare(`SELECT e.salary FROM emp e WHERE e.empno = ?`)
				if err != nil {
					errs <- err
					return
				}
				if _, err := c.Execute(st, int64(k%4+1)); err != nil {
					errs <- err
					return
				}
				if err := c.StmtClose(st); err != nil {
					errs <- err
					return
				}
			}
			_ = c.Quit()
		}(clientSide, i)
	}
	wg.Wait()
	srvWg.Wait() // samples fold into server metrics at connection close
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.ConnectionsOpened != conns || m.Queries != conns*20 || m.StmtExecs != conns*20 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestLargeResultStreams pushes a result set far larger than any buffer in
// the path and checks row count and packet integrity; long VARCHAR values
// also exercise multi-packet framing boundaries.
func TestLargeResultStreams(t *testing.T) {
	db := starmagic.Open()
	db.MustExec(`CREATE TABLE big (id INT, pad VARCHAR)`)
	var rows []starmagic.Row
	pad := strings.Repeat("x", 300)
	for i := 0; i < 20_000; i++ {
		rows = append(rows, starmagic.Row{starmagic.Int(int64(i)), starmagic.String(pad)})
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db, Config{})
	c := connect(t, srv, "u", "")
	rs, err := c.Query(`SELECT b.id, b.pad FROM big b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 20_000 {
		t.Fatalf("streamed %d rows", len(rs.Rows))
	}
	for i, r := range rs.Rows {
		if r[1].Value != pad {
			t.Fatalf("row %d corrupted", i)
		}
	}
}
