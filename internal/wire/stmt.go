package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"starmagic"
)

// stmt is one server-side prepared statement, registered per connection.
// The starmagic Prepared underneath comes out of the engine's sharded plan
// cache, so COM_STMT_PREPARE of a SQL text another connection already
// prepared skips the optimizer entirely.
type stmt struct {
	id       uint32
	prepared *starmagic.Prepared
	// paramTypes sticks the types from the first COM_STMT_EXECUTE carrying
	// the new-params-bound flag; later executions may omit them.
	paramTypes []byte
}

// handleStmtPrepare implements COM_STMT_PREPARE: prepare through the engine
// (plan cache included), register the statement, and reply with the
// COM_STMT_PREPARE_OK framing: header, parameter definitions, column
// definitions.
func (c *conn) handleStmtPrepare(query string) error {
	c.sample.StmtPrepares++
	p, err := c.srv.db.PrepareContext(c.ctx, query)
	if err != nil {
		return c.writeErr(err)
	}
	c.stmtSeq++
	st := &stmt{id: c.stmtSeq, prepared: p}
	c.stmts[st.id] = st
	numParams := p.NumParams()
	cols := p.Columns()

	b := c.scratch[:0]
	b = append(b, 0x00) // OK
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], st.id)
	b = append(b, id[:]...)
	b = append(b, byte(len(cols)), byte(len(cols)>>8))
	b = append(b, byte(numParams), byte(numParams>>8))
	b = append(b, 0)    // filler
	b = append(b, 0, 0) // warnings
	c.scratch = b
	if err := c.pc.writePacket(b); err != nil {
		return err
	}
	for i := 0; i < numParams; i++ {
		if err := c.writeColumnDef("?"); err != nil {
			return err
		}
	}
	if numParams > 0 {
		if err := c.writeEOF(); err != nil {
			return err
		}
	}
	for _, name := range cols {
		if err := c.writeColumnDef(name); err != nil {
			return err
		}
	}
	if len(cols) > 0 {
		if err := c.writeEOF(); err != nil {
			return err
		}
	}
	return c.pc.flush()
}

// handleStmtExecute implements COM_STMT_EXECUTE: decode the binary-bound
// parameters, run the statement through the streaming cursor, and stream a
// binary-protocol result set.
func (c *conn) handleStmtExecute(payload []byte) error {
	c.sample.StmtExecs++
	if len(payload) < 9 {
		return c.writeErr(mysqlError{errMalformedPacket, "HY000", "malformed COM_STMT_EXECUTE"})
	}
	st, ok := c.stmts[binary.LittleEndian.Uint32(payload[0:4])]
	if !ok {
		return c.writeErr(errUnknownStmtHandler(binary.LittleEndian.Uint32(payload[0:4])))
	}
	rest := payload[9:] // skip flags(1) + iteration count(4)
	args, err := decodeBinds(st, rest)
	if err != nil {
		return c.writeErr(err)
	}
	// ExecuteRowsIn with a nil transaction is plain autocommit execution;
	// with one open, the statement reads the transaction's snapshot (and its
	// own staged writes).
	rows, err := st.prepared.ExecuteRowsIn(c.ctx, c.txn, args...)
	if err != nil {
		return c.writeErr(err)
	}
	return c.writeResultSet(rows, true)
}

// decodeBinds parses the NULL bitmap, parameter types, and values of a
// COM_STMT_EXECUTE payload into starmagic bind values.
func decodeBinds(st *stmt, b []byte) ([]any, error) {
	n := st.prepared.NumParams()
	if n == 0 {
		return nil, nil
	}
	malformed := func(what string) error {
		return mysqlError{errMalformedPacket, "HY000", "malformed COM_STMT_EXECUTE: " + what}
	}
	maskLen := (n + 7) / 8
	if len(b) < maskLen+1 {
		return nil, malformed("truncated NULL bitmap")
	}
	nullMask := b[:maskLen]
	newParams := b[maskLen]
	b = b[maskLen+1:]
	if newParams == 1 {
		if len(b) < 2*n {
			return nil, malformed("truncated parameter types")
		}
		st.paramTypes = append(st.paramTypes[:0], b[:2*n]...)
		b = b[2*n:]
	}
	if len(st.paramTypes) != 2*n {
		return nil, malformed("no parameter types bound")
	}
	args := make([]any, n)
	for i := 0; i < n; i++ {
		if nullMask[i/8]&(1<<(i%8)) != 0 {
			args[i] = nil
			continue
		}
		t := st.paramTypes[2*i]
		v, rest, err := decodeBinaryValue(t, b)
		if err != nil {
			return nil, err
		}
		// The unsigned flag (0x80 in the second type byte) is ignored:
		// values round-trip through int64, which covers every client that
		// binds values representable in SQL INT.
		args[i] = v
		b = rest
	}
	return args, nil
}

// decodeBinaryValue decodes one binary-protocol value of wire type t,
// coercing onto the Go types starmagic's bind layer accepts (int64, float64,
// string, nil). This is the full numeric matrix a real client may send.
func decodeBinaryValue(t byte, b []byte) (any, []byte, error) {
	need := func(k int) error {
		if len(b) < k {
			return mysqlError{errMalformedPacket, "HY000",
				fmt.Sprintf("truncated binary value of type 0x%02x", t)}
		}
		return nil
	}
	switch t {
	case typeNull:
		return nil, b, nil
	case typeTiny:
		if err := need(1); err != nil {
			return nil, b, err
		}
		return int64(int8(b[0])), b[1:], nil
	case typeShort, typeYear:
		if err := need(2); err != nil {
			return nil, b, err
		}
		return int64(int16(binary.LittleEndian.Uint16(b))), b[2:], nil
	case typeLong, typeInt24:
		if err := need(4); err != nil {
			return nil, b, err
		}
		return int64(int32(binary.LittleEndian.Uint32(b))), b[4:], nil
	case typeLongLong:
		if err := need(8); err != nil {
			return nil, b, err
		}
		return int64(binary.LittleEndian.Uint64(b)), b[8:], nil
	case typeFloat:
		if err := need(4); err != nil {
			return nil, b, err
		}
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b))), b[4:], nil
	case typeDouble:
		if err := need(8); err != nil {
			return nil, b, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
	default:
		// Every string-shaped type — VARCHAR, VAR_STRING, STRING, BLOBs,
		// NEWDECIMAL — arrives as a lenenc byte string.
		s, n, null := readLenencStr(b)
		if null {
			return nil, b[n:], nil
		}
		if n == 0 {
			return nil, b, mysqlError{errMalformedPacket, "HY000",
				fmt.Sprintf("truncated lenenc value of type 0x%02x", t)}
		}
		return string(s), b[n:], nil
	}
}

// handleStmtClose implements COM_STMT_CLOSE (no response packet).
func (c *conn) handleStmtClose(payload []byte) {
	if len(payload) >= 4 {
		delete(c.stmts, binary.LittleEndian.Uint32(payload[0:4]))
	}
}

// handleStmtReset implements COM_STMT_RESET: clears bound state and acks.
func (c *conn) handleStmtReset(payload []byte) error {
	if len(payload) < 4 {
		return c.writeErr(mysqlError{errMalformedPacket, "HY000", "malformed COM_STMT_RESET"})
	}
	st, ok := c.stmts[binary.LittleEndian.Uint32(payload[0:4])]
	if !ok {
		return c.writeErr(errUnknownStmtHandler(binary.LittleEndian.Uint32(payload[0:4])))
	}
	st.paramTypes = st.paramTypes[:0]
	if err := c.writeOK(0); err != nil {
		return err
	}
	return c.pc.flush()
}
