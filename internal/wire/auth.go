package wire

import (
	"bytes"
	"crypto/rand"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// serverVersion is the version string the handshake reports. Clients parse
// it for feature detection, so it mimics a MySQL version with a suffix.
const serverVersion = "8.0.0-starmagic"

// newSalt returns a 20-byte auth challenge of non-NUL bytes (the handshake
// transmits the two halves NUL-terminated).
func newSalt() ([]byte, error) {
	salt := make([]byte, 20)
	if _, err := rand.Read(salt); err != nil {
		return nil, err
	}
	for i, b := range salt {
		// Map into the printable range; keeps every byte non-NUL.
		salt[i] = b%94 + 33
	}
	return salt, nil
}

// buildHandshakeV10 assembles the server greeting: protocol version 10,
// server version, connection id, the split 8+12 byte auth challenge, the
// capability flags, and the auth plugin name.
func buildHandshakeV10(connID uint32, salt []byte) []byte {
	b := make([]byte, 0, 128)
	b = append(b, 10) // protocol version
	b = append(b, serverVersion...)
	b = append(b, 0)
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], connID)
	b = append(b, id[:]...)
	caps := uint32(serverCapabilities)
	b = append(b, salt[:8]...) // auth-plugin-data-part-1
	b = append(b, 0)           // filler
	b = append(b, byte(caps), byte(caps>>8))
	b = append(b, charsetUTF8MB4)
	b = append(b, byte(statusAutocommit), byte(statusAutocommit>>8))
	b = append(b, byte(caps>>16), byte(caps>>24))
	b = append(b, byte(len(salt)+1)) // auth plugin data length (incl. NUL)
	b = append(b, make([]byte, 10)...)
	b = append(b, salt[8:]...) // auth-plugin-data-part-2
	b = append(b, 0)
	b = append(b, authPluginName...)
	b = append(b, 0)
	return b
}

// handshakeResponse is the parsed client reply (HandshakeResponse41).
type handshakeResponse struct {
	capabilities uint32
	user         string
	authResponse []byte
	database     string
	plugin       string
}

// parseHandshakeResponse parses a HandshakeResponse41 payload. Pre-4.1
// clients (missing CLIENT_PROTOCOL_41) are rejected.
func parseHandshakeResponse(b []byte) (*handshakeResponse, error) {
	if len(b) < 32 {
		return nil, fmt.Errorf("wire: handshake response too short (%d bytes)", len(b))
	}
	r := &handshakeResponse{capabilities: binary.LittleEndian.Uint32(b[0:4])}
	if r.capabilities&capProtocol41 == 0 {
		return nil, fmt.Errorf("wire: client does not speak protocol 4.1")
	}
	rest := b[32:] // skip max-packet-size(4), charset(1), filler(23)
	user, rest, ok := nulTerminated(rest)
	if !ok {
		return nil, fmt.Errorf("wire: handshake response missing username terminator")
	}
	r.user = string(user)
	switch {
	case r.capabilities&capPluginAuthLenencClientData != 0:
		auth, n, _ := readLenencStr(rest)
		if n == 0 {
			return nil, fmt.Errorf("wire: malformed lenenc auth response")
		}
		r.authResponse = auth
		rest = rest[n:]
	case r.capabilities&capSecureConnection != 0:
		if len(rest) < 1 || len(rest) < 1+int(rest[0]) {
			return nil, fmt.Errorf("wire: malformed auth response length")
		}
		r.authResponse = rest[1 : 1+int(rest[0])]
		rest = rest[1+int(rest[0]):]
	default:
		auth, after, ok := nulTerminated(rest)
		if !ok {
			auth, after = rest, nil
		}
		r.authResponse = auth
		rest = after
	}
	if r.capabilities&capConnectWithDB != 0 {
		if db, after, ok := nulTerminated(rest); ok {
			r.database = string(db)
			rest = after
		}
	}
	if r.capabilities&capPluginAuth != 0 {
		if plugin, _, ok := nulTerminated(rest); ok {
			r.plugin = string(plugin)
		}
	}
	return r, nil
}

// nativePassword computes the mysql_native_password response:
// SHA1(password) XOR SHA1(salt + SHA1(SHA1(password))). An empty password
// produces an empty response.
func nativePassword(password string, salt []byte) []byte {
	if password == "" {
		return nil
	}
	h1 := sha1.Sum([]byte(password))
	h2 := sha1.Sum(h1[:])
	mix := sha1.New()
	mix.Write(salt)
	mix.Write(h2[:])
	scramble := mix.Sum(nil)
	for i := range scramble {
		scramble[i] ^= h1[i]
	}
	return scramble
}

// checkNativePassword verifies a client's auth response against the
// configured password and the connection's salt.
func checkNativePassword(response []byte, password string, salt []byte) bool {
	want := nativePassword(password, salt)
	if len(want) == 0 {
		return len(response) == 0
	}
	return bytes.Equal(response, want)
}
