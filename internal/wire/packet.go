package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// packetConn frames MySQL packets over a net.Conn: each packet is a 3-byte
// little-endian payload length, a 1-byte sequence id, and the payload.
// Payloads of 16 MiB-1 or more are split across consecutive packets; the
// sequence id increments per packet and resets at each new command.
type packetConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	seq  uint8

	readBuf  []byte
	writeBuf []byte // header scratch for writePacket
}

func newPacketConn(c net.Conn) *packetConn {
	return &packetConn{
		conn:     c,
		r:        bufio.NewReaderSize(c, 16<<10),
		w:        bufio.NewWriterSize(c, 16<<10),
		writeBuf: make([]byte, 4),
	}
}

// resetSeq starts a new command cycle (client command packets carry seq 0).
func (p *packetConn) resetSeq() { p.seq = 0 }

// readPacket reads one logical packet, reassembling split payloads. The
// returned slice is valid until the next readPacket call.
func (p *packetConn) readPacket() ([]byte, error) {
	var hdr [4]byte
	p.readBuf = p.readBuf[:0]
	for {
		if _, err := io.ReadFull(p.r, hdr[:]); err != nil {
			return nil, err
		}
		n := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16
		if n > maxMalformed {
			return nil, fmt.Errorf("wire: packet length %d exceeds protocol maximum", n)
		}
		if hdr[3] != p.seq {
			return nil, fmt.Errorf("wire: packet out of order: got seq %d, want %d", hdr[3], p.seq)
		}
		p.seq++
		start := len(p.readBuf)
		p.readBuf = append(p.readBuf, make([]byte, n)...)
		if _, err := io.ReadFull(p.r, p.readBuf[start:]); err != nil {
			return nil, err
		}
		if n < maxPacketPayload {
			return p.readBuf, nil
		}
		// A max-size packet means the payload continues in the next one
		// (possibly with an empty terminator packet).
	}
}

// writePacket frames and buffers one logical packet, splitting payloads at
// the protocol maximum. Data is not flushed; call flush when the response is
// complete so streamed result sets coalesce into few syscalls.
func (p *packetConn) writePacket(payload []byte) error {
	for {
		chunk := payload
		if len(chunk) >= maxPacketPayload {
			chunk = payload[:maxPacketPayload]
		}
		p.writeBuf[0] = byte(len(chunk))
		p.writeBuf[1] = byte(len(chunk) >> 8)
		p.writeBuf[2] = byte(len(chunk) >> 16)
		p.writeBuf[3] = p.seq
		p.seq++
		if _, err := p.w.Write(p.writeBuf[:4]); err != nil {
			return err
		}
		if _, err := p.w.Write(chunk); err != nil {
			return err
		}
		payload = payload[len(chunk):]
		if len(chunk) < maxPacketPayload {
			return nil
		}
		// len(chunk) == max: the protocol requires a follow-up packet, which
		// is empty when the payload length was an exact multiple.
	}
}

func (p *packetConn) flush() error { return p.w.Flush() }

// --- length-encoded primitives ---

// lenencInt appends a length-encoded integer.
func lenencInt(b []byte, v uint64) []byte {
	switch {
	case v < 251:
		return append(b, byte(v))
	case v < 1<<16:
		return append(b, 0xfc, byte(v), byte(v>>8))
	case v < 1<<24:
		return append(b, 0xfd, byte(v), byte(v>>8), byte(v>>16))
	default:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		return append(append(b, 0xfe), buf[:]...)
	}
}

// lenencStr appends a length-encoded string.
func lenencStr(b []byte, s string) []byte {
	b = lenencInt(b, uint64(len(s)))
	return append(b, s...)
}

// readLenencInt decodes a length-encoded integer, returning the value, the
// bytes consumed (0 on malformed input), and whether it was the NULL marker
// (0xfb, used in text-protocol rows).
func readLenencInt(b []byte) (v uint64, n int, null bool) {
	if len(b) == 0 {
		return 0, 0, false
	}
	switch b[0] {
	case 0xfb:
		return 0, 1, true
	case 0xfc:
		if len(b) < 3 {
			return 0, 0, false
		}
		return uint64(b[1]) | uint64(b[2])<<8, 3, false
	case 0xfd:
		if len(b) < 4 {
			return 0, 0, false
		}
		return uint64(b[1]) | uint64(b[2])<<8 | uint64(b[3])<<16, 4, false
	case 0xfe:
		if len(b) < 9 {
			return 0, 0, false
		}
		return binary.LittleEndian.Uint64(b[1:9]), 9, false
	default:
		return uint64(b[0]), 1, false
	}
}

// readLenencStr decodes a length-encoded string, returning it and the total
// bytes consumed (0 on malformed input).
func readLenencStr(b []byte) (s []byte, n int, null bool) {
	v, n, null := readLenencInt(b)
	if n == 0 || null {
		return nil, n, null
	}
	if uint64(len(b)-n) < v {
		return nil, 0, false
	}
	return b[n : n+int(v)], n + int(v), false
}

// nulTerminated splits b at the first NUL, returning the string before it
// and the remainder after.
func nulTerminated(b []byte) (s []byte, rest []byte, ok bool) {
	for i, c := range b {
		if c == 0 {
			return b[:i], b[i+1:], true
		}
	}
	return nil, b, false
}
