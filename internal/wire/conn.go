package wire

import (
	"context"
	"fmt"
	"net"
	"strings"

	"starmagic"
	"starmagic/internal/obs"
)

// conn is one client connection: the packet framer, the per-connection
// prepared-statement registry, the open transaction (if any), and the
// metrics sample folded into the server's WireSink at close.
type conn struct {
	srv *Server
	ctx context.Context
	pc  *packetConn
	id  uint32

	// txn is the explicit transaction opened by BEGIN/START TRANSACTION,
	// nil in autocommit mode. Statements route through it until COMMIT/
	// ROLLBACK; a client disconnect rolls it back.
	txn *starmagic.Txn

	stmts   map[uint32]*stmt
	stmtSeq uint32

	scratch []byte
	sample  obs.ConnSample
}

// serve runs the connection to completion: handshake, then the command loop
// until COM_QUIT, client disconnect, or server shutdown.
func (c *conn) serve(nc net.Conn) {
	c.srv.metrics.RecordConnOpen()
	defer func() {
		if c.txn != nil {
			_ = c.txn.Rollback() // client went away mid-transaction
			c.txn = nil
		}
		c.srv.metrics.RecordConnClose(c.sample)
		_ = nc.Close()
	}()
	c.pc = newPacketConn(nc)
	c.stmts = make(map[uint32]*stmt)
	if err := c.handshake(); err != nil {
		c.sample.Failed = true
		return
	}
	for {
		select {
		case <-c.ctx.Done():
			return
		default:
		}
		c.pc.resetSeq()
		payload, err := c.pc.readPacket()
		if err != nil {
			return // client went away
		}
		if len(payload) == 0 {
			continue
		}
		quit, err := c.dispatch(payload[0], payload[1:])
		if quit || err != nil {
			return // transport failure; protocol errors were sent as ERR
		}
	}
}

// dispatch handles one command packet. A panic below the engine boundary is
// contained to the connection: it unwinds through the open cursor's deferred
// Close (releasing locks and budget), answers with an ERR packet, and keeps
// the server alive.
func (c *conn) dispatch(cmd byte, body []byte) (quit bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = c.writeErr(mysqlError{errUnknown, "HY000",
				fmt.Sprintf("query aborted: %v", r)})
		}
	}()
	switch cmd {
	case comQuit:
		return true, nil
	case comPing:
		c.sample.Pings++
		return false, c.ok()
	case comInitDB:
		// Single-database server: any USE succeeds.
		return false, c.ok()
	case comQuery:
		c.sample.Queries++
		return false, c.handleQuery(string(body))
	case comStmtPrepare:
		return false, c.handleStmtPrepare(string(body))
	case comStmtExecute:
		return false, c.handleStmtExecute(body)
	case comStmtClose:
		c.handleStmtClose(body)
		return false, nil
	case comStmtReset:
		return false, c.handleStmtReset(body)
	default:
		return false, c.writeErr(mysqlError{errUnknown, "HY000",
			fmt.Sprintf("command 0x%02x is not supported", cmd)})
	}
}

// ok writes and flushes an OK packet with no affected rows.
func (c *conn) ok() error {
	if err := c.writeOK(0); err != nil {
		return err
	}
	return c.pc.flush()
}

// handshake performs the HandshakeV10 exchange and authenticates the client
// with mysql_native_password.
func (c *conn) handshake() error {
	salt, err := newSalt()
	if err != nil {
		return err
	}
	if err := c.pc.writePacket(buildHandshakeV10(c.id, salt)); err != nil {
		return err
	}
	if err := c.pc.flush(); err != nil {
		return err
	}
	payload, err := c.pc.readPacket()
	if err != nil {
		return err
	}
	resp, err := parseHandshakeResponse(payload)
	if err != nil {
		_ = c.writeErr(mysqlError{errMalformedPacket, "HY000", err.Error()})
		return err
	}
	authOK := checkNativePassword(resp.authResponse, c.srv.password, salt)
	if authOK && c.srv.user != "" && resp.user != c.srv.user {
		authOK = false
	}
	if !authOK {
		err := mysqlError{errAccessDenied, "28000",
			fmt.Sprintf("Access denied for user '%s'", resp.user)}
		_ = c.writeErr(err)
		return err
	}
	if err := c.writeOK(0); err != nil {
		return err
	}
	return c.pc.flush()
}

// handleQuery dispatches one COM_QUERY. SELECT-shaped statements stream
// through QueryRows (inside the connection's transaction when one is open);
// BEGIN/COMMIT/ROLLBACK manage real MVCC transactions; DDL/DML run through
// Exec (or the open transaction) and answer OK with the affected-row count;
// session statements clients send on connect (SET, USE) are accepted as
// no-ops, and `SELECT @@var` introspection gets canned answers so stock
// clients' connect-time probes succeed.
func (c *conn) handleQuery(query string) error {
	q := strings.TrimSpace(query)
	q = strings.TrimSuffix(q, ";")
	switch kw := firstKeyword(q); kw {
	case "SELECT", "WITH", "(", "VALUES":
		if kw == "SELECT" && strings.HasPrefix(strings.ToLower(strings.TrimSpace(q[6:])), "@@") {
			return c.systemVarQuery(q)
		}
		var rows *starmagic.Rows
		var err error
		if c.txn != nil {
			rows, err = c.txn.QueryRows(c.ctx, q)
		} else {
			rows, err = c.srv.db.QueryRows(c.ctx, q)
		}
		if err != nil {
			return c.writeErr(err)
		}
		return c.writeResultSet(rows, false)
	case "BEGIN", "START":
		return c.txnBegin()
	case "COMMIT":
		return c.txnEnd(true)
	case "ROLLBACK":
		return c.txnEnd(false)
	case "SET", "USE":
		// Session chatter: single-database server with autocommit pinned to
		// 1, so these are accepted and ignored.
		return c.ok()
	default:
		var n int64
		var err error
		if c.txn != nil {
			n, err = c.txn.ExecContext(c.ctx, q)
			if c.txn.Done() {
				// A write-write conflict rolled the transaction back
				// engine-side; drop the handle so the status flags (and the
				// next statement) reflect autocommit mode again.
				c.txn = nil
			}
		} else {
			n, err = c.srv.db.Exec(q)
		}
		if err != nil {
			return c.writeErr(err)
		}
		if err := c.writeOK(uint64(n)); err != nil {
			return err
		}
		return c.pc.flush()
	}
}

// txnBegin opens an explicit transaction; BEGIN inside an open transaction
// implicitly commits it first, matching MySQL.
func (c *conn) txnBegin() error {
	if c.txn != nil {
		t := c.txn
		c.txn = nil
		if err := t.Commit(); err != nil {
			return c.writeErr(err)
		}
	}
	c.txn = c.srv.db.Begin()
	return c.ok()
}

// txnEnd resolves the open transaction. COMMIT/ROLLBACK without one is a
// no-op OK, matching MySQL in autocommit mode.
func (c *conn) txnEnd(commit bool) error {
	t := c.txn
	c.txn = nil
	if t == nil {
		return c.ok()
	}
	var err error
	if commit {
		err = t.Commit()
	} else {
		err = t.Rollback()
	}
	if err != nil {
		return c.writeErr(err)
	}
	return c.ok()
}

// systemVarQuery answers `SELECT @@var[, @@var...]` probes (the mysql CLI
// sends `select @@version_comment limit 1` before anything else) with one
// canned row.
func (c *conn) systemVarQuery(q string) error {
	body := strings.TrimSpace(q[6:])
	if i := strings.LastIndex(strings.ToLower(body), " limit "); i >= 0 {
		body = strings.TrimSpace(body[:i])
	}
	var names, values []string
	for _, item := range strings.Split(body, ",") {
		item = strings.TrimSpace(item)
		name := strings.TrimPrefix(item, "@@")
		if i := strings.IndexAny(name, " \t"); i >= 0 { // strip alias
			name = name[:i]
		}
		names = append(names, "@@"+name)
		values = append(values, systemVars[strings.ToLower(strings.TrimPrefix(name, "session."))])
	}
	if err := c.pc.writePacket(lenencInt(c.scratch[:0], uint64(len(names)))); err != nil {
		return err
	}
	for _, n := range names {
		if err := c.writeColumnDef(n); err != nil {
			return err
		}
	}
	if err := c.writeEOF(); err != nil {
		return err
	}
	row := c.scratch[:0]
	for _, v := range values {
		row = lenencStr(row, v)
	}
	c.scratch = row
	if err := c.pc.writePacket(row); err != nil {
		return err
	}
	c.sample.RowsSent++
	if err := c.writeEOF(); err != nil {
		return err
	}
	return c.pc.flush()
}

// systemVars are the introspection variables connect-time client probes ask
// for. Unknown variables answer "".
var systemVars = map[string]string{
	"version_comment":      "starmagic",
	"version":              serverVersion,
	"max_allowed_packet":   "16777215",
	"sql_mode":             "",
	"autocommit":           "1",
	"character_set_client": "utf8mb4",
}

// firstKeyword returns the first SQL keyword of q, uppercased ("(" for a
// parenthesized query expression).
func firstKeyword(q string) string {
	q = strings.TrimSpace(q)
	if q == "" {
		return ""
	}
	if q[0] == '(' {
		return "("
	}
	i := 0
	for i < len(q) && !isSpaceByte(q[i]) && q[i] != '(' && q[i] != ';' {
		i++
	}
	return strings.ToUpper(q[:i])
}

func isSpaceByte(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }
