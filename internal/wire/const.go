// Package wire speaks the MySQL client/server protocol over the starmagic
// streaming Rows API, so any stock MySQL-protocol client — the mysql CLI, a
// driver, a GUI — can connect to a starmagic server, run ad-hoc and prepared
// queries, and receive result sets streamed packet by packet.
//
// The package deliberately consumes only the public starmagic surface
// (QueryRows / PrepareContext / ExecuteRows, the typed error surface, the
// plan cache): it is the first external client of the streaming cursor API
// and exercises exactly the contract an embedding application gets.
//
// Protocol scope: HandshakeV10 with mysql_native_password, the text protocol
// (COM_QUERY), the binary protocol (COM_STMT_PREPARE / EXECUTE / CLOSE /
// RESET), and the session commands COM_PING, COM_INIT_DB, and COM_QUIT.
// Classic EOF framing is used (CLIENT_DEPRECATE_EOF is not advertised), and
// all result columns are described as VAR_STRING with values rendered to
// their SQL text — starmagic's dynamically typed datums make a per-column
// static wire type unreliable, and every client understands strings.
package wire

// Protocol command bytes (first payload byte of a client command packet).
const (
	comQuit        = 0x01
	comInitDB      = 0x02
	comQuery       = 0x03
	comPing        = 0x0e
	comStmtPrepare = 0x16
	comStmtExecute = 0x17
	comStmtClose   = 0x19
	comStmtReset   = 0x1a
)

// Capability flags (the subset the server advertises or inspects).
const (
	capLongPassword               = 0x00000001
	capFoundRows                  = 0x00000002
	capLongFlag                   = 0x00000004
	capConnectWithDB              = 0x00000008
	capProtocol41                 = 0x00000200
	capTransactions               = 0x00002000
	capSecureConnection           = 0x00008000
	capMultiStatements            = 0x00010000
	capMultiResults               = 0x00020000
	capPluginAuth                 = 0x00080000
	capConnectAttrs               = 0x00100000
	capPluginAuthLenencClientData = 0x00200000
)

// serverCapabilities is what the server advertises in HandshakeV10. Classic
// EOF result framing is kept (no CLIENT_DEPRECATE_EOF) so one result-set
// shape serves every client.
const serverCapabilities = capLongPassword | capFoundRows | capLongFlag |
	capConnectWithDB | capProtocol41 | capTransactions | capSecureConnection |
	capMultiResults | capPluginAuth | capPluginAuthLenencClientData

// Column type bytes. The server describes every result column as VAR_STRING;
// the full numeric set below is what binary COM_STMT_EXECUTE binds arrive as.
const (
	typeTiny       = 0x01
	typeShort      = 0x02
	typeLong       = 0x03
	typeFloat      = 0x04
	typeDouble     = 0x05
	typeNull       = 0x06
	typeLongLong   = 0x08
	typeInt24      = 0x09
	typeYear       = 0x0d
	typeVarchar    = 0x0f
	typeNewDecimal = 0xf6
	typeBlob       = 0xfc
	typeVarString  = 0xfd
	typeString     = 0xfe
)

// Character sets: utf8mb4_general_ci for text, binary for blobs.
const (
	charsetUTF8MB4 = 45
	charsetBinary  = 63
)

// Server status flags.
const (
	statusInTrans    = 0x0001 // SERVER_STATUS_IN_TRANS: explicit transaction open
	statusAutocommit = 0x0002 // SERVER_STATUS_AUTOCOMMIT
)

// Packet-framing limits.
const (
	maxPacketPayload = 0xffffff // 16 MiB - 1: longer payloads are split
	maxMalformed     = 1 << 24  // reject client packets claiming more than 16 MiB
)

// authPluginName is the only authentication method the server offers.
// mysql_native_password is universally supported by clients and needs no TLS
// for its challenge/response (the password never crosses in clear).
const authPluginName = "mysql_native_password"
