package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
)

// Client is a minimal MySQL-protocol client: enough of the text and binary
// protocols to drive the server from tests and benchmarks, and a reference
// for what any stock client exchanges with it. It is not safe for
// concurrent use (neither is a MySQL connection).
type Client struct {
	pc *packetConn
}

// ClientError is an ERR packet decoded client-side.
type ClientError struct {
	Code     uint16
	SQLState string
	Message  string
}

func (e *ClientError) Error() string {
	return fmt.Sprintf("server error %d (%s): %s", e.Code, e.SQLState, e.Message)
}

// Resultset is a fully read query result. NULL values are represented by
// Valid=false cells.
type Resultset struct {
	Columns []string
	Rows    [][]Cell
}

// Cell is one result value: the text rendering and a NULL flag.
type Cell struct {
	Valid bool
	Value string
}

// NewClient performs the client side of the handshake over an established
// transport and returns a ready client.
func NewClient(nc net.Conn, user, password string) (*Client, error) {
	c := &Client{pc: newPacketConn(nc)}
	greeting, err := c.pc.readPacket()
	if err != nil {
		return nil, err
	}
	if len(greeting) > 0 && greeting[0] == 0xff {
		// A server may refuse before the handshake (too many connections).
		return nil, decodeErr(greeting)
	}
	salt, err := parseGreeting(greeting)
	if err != nil {
		return nil, err
	}
	resp := buildHandshakeResponse(user, nativePassword(password, salt))
	if err := c.pc.writePacket(resp); err != nil {
		return nil, err
	}
	if err := c.pc.flush(); err != nil {
		return nil, err
	}
	payload, err := c.pc.readPacket()
	if err != nil {
		return nil, err
	}
	if len(payload) > 0 && payload[0] == 0xff {
		return nil, decodeErr(payload)
	}
	return c, nil
}

// parseGreeting extracts the 20-byte auth salt from a HandshakeV10 payload.
func parseGreeting(b []byte) ([]byte, error) {
	if len(b) < 1 || b[0] != 10 {
		return nil, fmt.Errorf("wire client: unexpected protocol version")
	}
	_, rest, ok := nulTerminated(b[1:]) // server version
	if !ok || len(rest) < 4+8+1+2+1+2+2+1+10 {
		return nil, fmt.Errorf("wire client: malformed greeting")
	}
	rest = rest[4:] // connection id
	salt := append([]byte(nil), rest[:8]...)
	rest = rest[8+1+2+1+2+2+1+10:] // salt1, filler, caps, charset, status, caps, saltlen, reserved
	part2, _, ok := nulTerminated(rest)
	if !ok {
		return nil, fmt.Errorf("wire client: malformed greeting salt")
	}
	return append(salt, part2...), nil
}

// buildHandshakeResponse assembles a HandshakeResponse41.
func buildHandshakeResponse(user string, auth []byte) []byte {
	const caps = capProtocol41 | capSecureConnection | capPluginAuth | capLongPassword
	b := make([]byte, 0, 64)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], caps)
	b = append(b, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], 1<<24)
	b = append(b, u32[:]...) // max packet size
	b = append(b, charsetUTF8MB4)
	b = append(b, make([]byte, 23)...)
	b = append(b, user...)
	b = append(b, 0)
	b = append(b, byte(len(auth)))
	b = append(b, auth...)
	b = append(b, authPluginName...)
	b = append(b, 0)
	return b
}

func decodeErr(payload []byte) error {
	e := &ClientError{}
	if len(payload) >= 3 {
		e.Code = binary.LittleEndian.Uint16(payload[1:3])
	}
	rest := payload[3:]
	if len(rest) > 0 && rest[0] == '#' {
		if len(rest) >= 6 {
			e.SQLState = string(rest[1:6])
			rest = rest[6:]
		}
	}
	e.Message = string(rest)
	return e
}

func isEOF(payload []byte) bool {
	return len(payload) > 0 && payload[0] == 0xfe && len(payload) < 9
}

// Ping round-trips COM_PING.
func (c *Client) Ping() error {
	if err := c.command(comPing, nil); err != nil {
		return err
	}
	return c.readOK()
}

// Exec runs a statement expected to answer OK (DDL, DML, SET) and returns
// the affected-row count.
func (c *Client) Exec(query string) (uint64, error) {
	if err := c.command(comQuery, []byte(query)); err != nil {
		return 0, err
	}
	payload, err := c.pc.readPacket()
	if err != nil {
		return 0, err
	}
	switch {
	case len(payload) > 0 && payload[0] == 0x00:
		affected, _, _ := readLenencInt(payload[1:])
		return affected, nil
	case len(payload) > 0 && payload[0] == 0xff:
		return 0, decodeErr(payload)
	default:
		return 0, fmt.Errorf("wire client: unexpected response 0x%02x to Exec", payload[0])
	}
}

// ExecStatus is Exec that also returns the OK packet's server status flags,
// so callers can observe SERVER_STATUS_IN_TRANS transitions.
func (c *Client) ExecStatus(query string) (affected uint64, status uint16, err error) {
	if err := c.command(comQuery, []byte(query)); err != nil {
		return 0, 0, err
	}
	payload, err := c.pc.readPacket()
	if err != nil {
		return 0, 0, err
	}
	switch {
	case len(payload) > 0 && payload[0] == 0x00:
		affected, n, _ := readLenencInt(payload[1:])
		rest := payload[1+n:]
		_, m, _ := readLenencInt(rest) // last insert id
		rest = rest[m:]
		if len(rest) >= 2 {
			status = binary.LittleEndian.Uint16(rest)
		}
		return affected, status, nil
	case len(payload) > 0 && payload[0] == 0xff:
		return 0, 0, decodeErr(payload)
	default:
		return 0, 0, fmt.Errorf("wire client: unexpected response 0x%02x to ExecStatus", payload[0])
	}
}

// Query runs a text-protocol query and reads the whole result set.
func (c *Client) Query(query string) (*Resultset, error) {
	if err := c.command(comQuery, []byte(query)); err != nil {
		return nil, err
	}
	return c.readResultset(false)
}

// Stmt is a client-side prepared-statement handle.
type Stmt struct {
	ID        uint32
	NumParams int
	Columns   []string
}

// Prepare round-trips COM_STMT_PREPARE.
func (c *Client) Prepare(query string) (*Stmt, error) {
	if err := c.command(comStmtPrepare, []byte(query)); err != nil {
		return nil, err
	}
	payload, err := c.pc.readPacket()
	if err != nil {
		return nil, err
	}
	if len(payload) > 0 && payload[0] == 0xff {
		return nil, decodeErr(payload)
	}
	if len(payload) < 12 || payload[0] != 0x00 {
		return nil, fmt.Errorf("wire client: malformed COM_STMT_PREPARE_OK")
	}
	st := &Stmt{
		ID:        binary.LittleEndian.Uint32(payload[1:5]),
		NumParams: int(binary.LittleEndian.Uint16(payload[7:9])),
	}
	numCols := int(binary.LittleEndian.Uint16(payload[5:7]))
	for i := 0; i < st.NumParams; i++ {
		if _, err := c.pc.readPacket(); err != nil { // param definition
			return nil, err
		}
	}
	if st.NumParams > 0 {
		if _, err := c.pc.readPacket(); err != nil { // EOF
			return nil, err
		}
	}
	for i := 0; i < numCols; i++ {
		def, err := c.pc.readPacket()
		if err != nil {
			return nil, err
		}
		name, err := columnDefName(def)
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, name)
	}
	if numCols > 0 {
		if _, err := c.pc.readPacket(); err != nil { // EOF
			return nil, err
		}
	}
	return st, nil
}

// Execute round-trips COM_STMT_EXECUTE with binary-bound args (nil, bool,
// int/int64, float64, string, or []byte) and reads the binary result set.
func (c *Client) Execute(st *Stmt, args ...any) (*Resultset, error) {
	if len(args) != st.NumParams {
		return nil, fmt.Errorf("wire client: %d args for %d parameters", len(args), st.NumParams)
	}
	b := make([]byte, 0, 64)
	b = append(b, comStmtExecute)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], st.ID)
	b = append(b, u32[:]...)
	b = append(b, 0)          // flags: CURSOR_TYPE_NO_CURSOR
	b = append(b, 1, 0, 0, 0) // iteration count
	if st.NumParams > 0 {
		maskStart := len(b)
		b = append(b, make([]byte, (st.NumParams+7)/8)...)
		b = append(b, 1) // new-params-bound
		types := make([]byte, 0, 2*st.NumParams)
		var values []byte
		for i, a := range args {
			t, v, null := encodeBinaryArg(a)
			types = append(types, t, 0)
			if null {
				b[maskStart+i/8] |= 1 << (i % 8)
				continue
			}
			values = append(values, v...)
		}
		b = append(b, types...)
		b = append(b, values...)
	}
	c.pc.resetSeq()
	if err := c.pc.writePacket(b); err != nil {
		return nil, err
	}
	if err := c.pc.flush(); err != nil {
		return nil, err
	}
	return c.readResultset(true)
}

// StmtClose sends COM_STMT_CLOSE (fire-and-forget per protocol).
func (c *Client) StmtClose(st *Stmt) error {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], st.ID)
	if err := c.command(comStmtClose, u32[:]); err != nil {
		return err
	}
	return nil
}

// Quit sends COM_QUIT.
func (c *Client) Quit() error { return c.command(comQuit, nil) }

// encodeBinaryArg picks the wire type and binary encoding for one argument.
func encodeBinaryArg(a any) (t byte, v []byte, null bool) {
	switch x := a.(type) {
	case nil:
		return typeNull, nil, true
	case bool:
		if x {
			return typeTiny, []byte{1}, false
		}
		return typeTiny, []byte{0}, false
	case int:
		return encodeBinaryArg(int64(x))
	case int32:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		return typeLong, b[:], false
	case int64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(x))
		return typeLongLong, b[:], false
	case float32:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(x))
		return typeFloat, b[:], false
	case float64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		return typeDouble, b[:], false
	case string:
		return typeVarString, lenencStr(nil, x), false
	case []byte:
		return typeBlob, lenencStr(nil, string(x)), false
	default:
		return typeVarString, lenencStr(nil, fmt.Sprint(x)), false
	}
}

// command sends a command packet: the command byte plus an optional payload.
func (c *Client) command(cmd byte, payload []byte) error {
	c.pc.resetSeq()
	b := make([]byte, 0, 1+len(payload))
	b = append(b, cmd)
	b = append(b, payload...)
	if err := c.pc.writePacket(b); err != nil {
		return err
	}
	return c.pc.flush()
}

func (c *Client) readOK() error {
	payload, err := c.pc.readPacket()
	if err != nil {
		return err
	}
	if len(payload) > 0 && payload[0] == 0xff {
		return decodeErr(payload)
	}
	if len(payload) == 0 || payload[0] != 0x00 {
		return fmt.Errorf("wire client: expected OK packet")
	}
	return nil
}

// readResultset reads a complete result set (or OK for row-less responses).
func (c *Client) readResultset(bin bool) (*Resultset, error) {
	payload, err := c.pc.readPacket()
	if err != nil {
		return nil, err
	}
	switch {
	case len(payload) > 0 && payload[0] == 0xff:
		return nil, decodeErr(payload)
	case len(payload) > 0 && payload[0] == 0x00:
		return &Resultset{}, nil
	}
	nCols, n, _ := readLenencInt(payload)
	if n == 0 {
		return nil, fmt.Errorf("wire client: malformed result header")
	}
	rs := &Resultset{}
	for i := 0; i < int(nCols); i++ {
		def, err := c.pc.readPacket()
		if err != nil {
			return nil, err
		}
		name, err := columnDefName(def)
		if err != nil {
			return nil, err
		}
		rs.Columns = append(rs.Columns, name)
	}
	if _, err := c.pc.readPacket(); err != nil { // EOF after columns
		return nil, err
	}
	for {
		payload, err := c.pc.readPacket()
		if err != nil {
			return nil, err
		}
		if isEOF(payload) {
			return rs, nil
		}
		if len(payload) > 0 && payload[0] == 0xff {
			return rs, decodeErr(payload)
		}
		var row []Cell
		if bin {
			row, err = decodeBinaryRowPacket(payload, int(nCols))
		} else {
			row, err = decodeTextRowPacket(payload, int(nCols))
		}
		if err != nil {
			return nil, err
		}
		rs.Rows = append(rs.Rows, row)
	}
}

// columnDefName extracts the column name from a ColumnDefinition41 payload.
func columnDefName(b []byte) (string, error) {
	// Skip catalog, schema, table, org_table; the fifth lenenc string is name.
	for i := 0; i < 4; i++ {
		_, n, _ := readLenencStr(b)
		if n == 0 {
			return "", fmt.Errorf("wire client: malformed column definition")
		}
		b = b[n:]
	}
	name, n, _ := readLenencStr(b)
	if n == 0 {
		return "", fmt.Errorf("wire client: malformed column definition name")
	}
	return string(name), nil
}

func decodeTextRowPacket(b []byte, nCols int) ([]Cell, error) {
	row := make([]Cell, 0, nCols)
	for len(row) < nCols {
		v, n, null := readLenencStr(b)
		if null {
			row = append(row, Cell{})
			b = b[n:]
			continue
		}
		if n == 0 {
			return nil, fmt.Errorf("wire client: malformed text row")
		}
		row = append(row, Cell{Valid: true, Value: string(v)})
		b = b[n:]
	}
	return row, nil
}

func decodeBinaryRowPacket(b []byte, nCols int) ([]Cell, error) {
	if len(b) < 1 || b[0] != 0x00 {
		return nil, fmt.Errorf("wire client: malformed binary row header")
	}
	maskLen := (nCols + 9) / 8
	if len(b) < 1+maskLen {
		return nil, fmt.Errorf("wire client: malformed binary row bitmap")
	}
	mask := b[1 : 1+maskLen]
	b = b[1+maskLen:]
	row := make([]Cell, 0, nCols)
	for i := 0; i < nCols; i++ {
		bit := i + 2
		if mask[bit/8]&(1<<(bit%8)) != 0 {
			row = append(row, Cell{})
			continue
		}
		// The server declares every column VAR_STRING, so every value is a
		// lenenc string.
		v, n, _ := readLenencStr(b)
		if n == 0 {
			return nil, fmt.Errorf("wire client: malformed binary row value")
		}
		row = append(row, Cell{Valid: true, Value: string(v)})
		b = b[n:]
	}
	return row, nil
}
