// Package catalog holds schema metadata: base tables with their columns,
// keys and statistics, and view definitions (stored as SQL text, expanded by
// the semantic analyzer). The plan optimizer (internal/opt) consumes the
// statistics for cardinality and selectivity estimation, exactly the role
// catalog statistics play in Starburst's plan optimization phase (§3.2).
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"starmagic/internal/datum"
)

// Column describes one column of a base table or view.
type Column struct {
	Name string
	Type datum.Type
}

// ColumnStats carries per-column statistics used by the cost model.
type ColumnStats struct {
	// DistinctCount is the number of distinct non-NULL values. Above
	// SampleThreshold rows it is a Duj1 estimate from a stride sample (see
	// AnalyzeTable); below, it is exact.
	DistinctCount int64
	// NullCount is the number of NULL values (always exact; counting nulls
	// is cheap even on the full scan).
	NullCount int64
	// Min and Max bound the non-NULL values (valid only when
	// DistinctCount > 0 and the type is ordered). Always exact.
	Min, Max datum.D
	// Hist is the equi-depth histogram over non-NULL values, or nil when
	// the column is empty.
	Hist *Histogram
}

// Table is a base-table descriptor.
type Table struct {
	Name    string
	Columns []Column
	// Keys lists sets of column ordinals that are unique keys. The first
	// entry, when present, is the primary key.
	Keys [][]int
	// Indexes lists column ordinal sets with hash indexes available to the
	// executor.
	Indexes [][]int

	// RowCount and Stats are filled by Analyze.
	RowCount int64
	Stats    []ColumnStats
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// HasKey reports whether cols (in any order) contains some unique key of t.
func (t *Table) HasKey(cols []int) bool {
	set := make(map[int]bool, len(cols))
	for _, c := range cols {
		set[c] = true
	}
	for _, key := range t.Keys {
		all := true
		for _, k := range key {
			if !set[k] {
				all = false
				break
			}
		}
		if all && len(key) > 0 {
			return true
		}
	}
	return false
}

// HasIndex reports whether an index exists exactly on cols (order
// insensitive).
func (t *Table) HasIndex(cols []int) bool {
	want := append([]int(nil), cols...)
	sort.Ints(want)
	for _, idx := range t.Indexes {
		have := append([]int(nil), idx...)
		sort.Ints(have)
		if len(have) == len(want) {
			eq := true
			for i := range have {
				if have[i] != want[i] {
					eq = false
					break
				}
			}
			if eq {
				return true
			}
		}
	}
	return false
}

// View is a stored view definition. Definitions are kept as SQL text and
// re-parsed on use, mirroring how the paper treats each view as a blob of
// SQL (§2).
type View struct {
	Name string
	// Columns optionally renames the view's output columns (CREATE VIEW
	// v(a, b) AS ...). Empty means inherit from the defining query.
	Columns []string
	SQL     string
}

// Catalog is the schema directory. It is not safe for concurrent mutation;
// the engine serializes DDL.
type Catalog struct {
	tables map[string]*Table
	views  map[string]*View
	order  []string // creation order, for deterministic listing
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
	}
}

func key(name string) string { return strings.ToLower(name) }

// AddTable registers a base table. The name must be unused.
func (c *Catalog) AddTable(t *Table) error {
	k := key(t.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("table %q already exists", t.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("view %q already exists", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		ck := key(col.Name)
		if seen[ck] {
			return fmt.Errorf("duplicate column %q in table %q", col.Name, t.Name)
		}
		seen[ck] = true
	}
	c.tables[k] = t
	c.order = append(c.order, k)
	return nil
}

// AddView registers a view definition. The name must be unused.
func (c *Catalog) AddView(v *View) error {
	k := key(v.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("table %q already exists", v.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("view %q already exists", v.Name)
	}
	c.views[k] = v
	c.order = append(c.order, k)
	return nil
}

// DropTable removes a base table. Views whose bodies reference the table are
// left registered — like DROP VIEW's tolerance for forward references, they
// fail at their next use instead.
func (c *Catalog) DropTable(name string) error {
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("table %q does not exist", name)
	}
	delete(c.tables, k)
	for i, n := range c.order {
		if n == k {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return nil
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	k := key(name)
	if _, ok := c.views[k]; !ok {
		return fmt.Errorf("view %q does not exist", name)
	}
	delete(c.views, k)
	for i, n := range c.order {
		if n == k {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return nil
}

// Table resolves a base table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[key(name)]
	return t, ok
}

// View resolves a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	v, ok := c.views[key(name)]
	return v, ok
}

// Tables returns all base tables in creation order.
func (c *Catalog) Tables() []*Table {
	var out []*Table
	for _, k := range c.order {
		if t, ok := c.tables[k]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Views returns all views in creation order.
func (c *Catalog) Views() []*View {
	var out []*View
	for _, k := range c.order {
		if v, ok := c.views[k]; ok {
			out = append(out, v)
		}
	}
	return out
}

// SampleThreshold is the row count above which ANALYZE switches from exact
// distinct counting and exact histogram builds to a deterministic stride
// sample of ~SampleThreshold rows. NullCount, Min, and Max stay exact (one
// cheap comparison per row); the per-value map and the histogram sort — the
// two superlinear-memory / O(n log n) pieces — are what the cap bounds.
// Accuracy trade-off: sampled DistinctCount is a Duj1 estimate (unbiased for
// uniform duplication, conservative under heavy skew), and sampled histogram
// bucket counts carry ~1/sqrt(depth) relative error per bucket — values
// rarer than about total/SampleThreshold rows may be missed entirely, but
// heavy values (the ones that flip plan choices) are always captured.
const SampleThreshold = 65536

// AnalyzeTable computes RowCount and per-column statistics from the rows.
// The storage layer calls this from Database.Analyze.
func AnalyzeTable(t *Table, rows []datum.Row) {
	t.RowCount = int64(len(rows))
	t.Stats = make([]ColumnStats, len(t.Columns))
	stride := 1
	if len(rows) > SampleThreshold {
		stride = (len(rows) + SampleThreshold - 1) / SampleThreshold
	}
	keyBuf := make([]byte, 0, 32)
	var vals []datum.D
	for ci := range t.Columns {
		distinct := make(map[string]struct{})
		singletons := make(map[string]bool) // sample key -> seen exactly once
		st := &t.Stats[ci]
		vals = vals[:0]
		sampled := int64(0)
		for ri, r := range rows {
			d := r[ci]
			if d.IsNull() {
				st.NullCount++
				continue
			}
			// Exact min/max over every row.
			if st.Min.IsNull() {
				st.Min, st.Max = d, d
			} else {
				if datum.Compare(d, st.Min) < 0 {
					st.Min = d
				}
				if datum.Compare(d, st.Max) > 0 {
					st.Max = d
				}
			}
			if ri%stride != 0 {
				continue
			}
			// Sampled (or, below the threshold, exhaustive) distinct map and
			// histogram input.
			sampled++
			vals = append(vals, d)
			keyBuf = d.AppendKey(keyBuf[:0])
			if _, ok := distinct[string(keyBuf)]; !ok {
				distinct[string(keyBuf)] = struct{}{}
				singletons[string(keyBuf)] = true
			} else {
				delete(singletons, string(keyBuf))
			}
		}
		nonNull := int64(len(rows)) - st.NullCount
		st.DistinctCount = estimateDistinct(int64(len(distinct)), int64(len(singletons)), sampled, nonNull)
		ndvScale := 1.0
		if sampled > 0 && len(distinct) > 0 {
			ndvScale = float64(st.DistinctCount) / float64(len(distinct))
		}
		st.Hist = buildHistogram(vals, nonNull, ndvScale)
	}
}

// estimateDistinct scales a sample's distinct count d (with f1 values seen
// exactly once) up to the full non-NULL population N using the Duj1
// estimator: d̂ = n·d / (n − f1 + f1·n/N). With an exhaustive "sample"
// (n == N) it degenerates to the exact count d.
func estimateDistinct(d, f1, n, total int64) int64 {
	if d == 0 || n == 0 || total <= n {
		return d
	}
	est := float64(n) * float64(d) / (float64(n-f1) + float64(f1)*float64(n)/float64(total))
	out := int64(est + 0.5)
	if out < d {
		out = d
	}
	if out > total {
		out = total
	}
	return out
}
