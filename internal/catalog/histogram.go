package catalog

// Equi-depth column histograms. ANALYZE builds one per column; the plan
// optimizer (internal/opt) probes them for equality and range selectivities.
// On the skewed data distributions where the paper's magic-vs-no-magic
// comparisons (Table 1, Figures 2-3) flip, flat per-column defaults — "every
// value is average" — are exactly what mis-costs the plans; an equi-depth
// histogram keeps heavy values visible because a value more frequent than
// one bucket's depth occupies whole buckets by itself.
//
// Buckets are run-aligned: a bucket boundary never splits a run of equal
// values, so every distinct value lives in exactly one bucket (a value
// heavier than the target depth gets one or more degenerate buckets with
// NDV 1). That makes the equality probe exact over the sampled data: find
// the value's bucket, divide its row count by its distinct count.
//
// Above a row threshold the build switches to a deterministic stride sample
// (see AnalyzeTable) so ANALYZE on million-row tables stays linear with a
// small constant; bucket row counts are scaled back to the full relation and
// per-bucket NDVs are scaled by the same factor as the table-wide Duj1
// distinct estimate.

import (
	"fmt"
	"sort"
	"strings"

	"starmagic/internal/datum"
)

// HistBuckets is the target bucket count for one column histogram. 64 keeps
// the probe a short scan (cache-resident) while resolving ~1.6% quantiles.
const HistBuckets = 64

// HistBucket is one equi-depth bucket: the rows with prevUpper < v <= Upper
// (the first bucket starts at the histogram's Low bound, inclusive).
type HistBucket struct {
	// Upper is the inclusive upper bound of the bucket's value range.
	Upper datum.D
	// Rows is the (scaled) number of rows in the bucket.
	Rows int64
	// NDV is the (scaled) number of distinct values in the bucket. A heavy
	// value that overflows the target depth yields buckets with NDV 1.
	NDV int64
}

// Histogram is a per-column equi-depth histogram over non-NULL values.
type Histogram struct {
	// Low is the inclusive lower bound of the first bucket (the column min
	// as observed in the build sample).
	Low datum.D
	// Buckets in ascending value order; boundaries never split equal-value
	// runs.
	Buckets []HistBucket
	// Rows is the total (scaled) non-NULL row count the buckets represent.
	Rows int64
	// SampledRows is the number of rows the histogram was actually built
	// from (= Rows when the build was exact, smaller when sampled).
	SampledRows int64
}

// Sampled reports whether the histogram was built from a sample rather than
// every row.
func (h *Histogram) Sampled() bool { return h.SampledRows < h.Rows }

// NDV sums the per-bucket distinct counts.
func (h *Histogram) NDV() int64 {
	var n int64
	for _, b := range h.Buckets {
		n += b.NDV
	}
	return n
}

// buildHistogram constructs a run-aligned equi-depth histogram from the
// sampled non-NULL values (sorted in place). totalRows is the full-relation
// non-NULL row count the bucket row counts are scaled to; ndvScale is the
// factor table-wide distinct counts were scaled by (1 for exact builds).
func buildHistogram(vals []datum.D, totalRows int64, ndvScale float64) *Histogram {
	if len(vals) == 0 || totalRows <= 0 {
		return nil
	}
	sort.Slice(vals, func(i, j int) bool { return datum.Compare(vals[i], vals[j]) < 0 })
	n := len(vals)
	depth := (n + HistBuckets - 1) / HistBuckets
	if depth < 1 {
		depth = 1
	}
	h := &Histogram{Low: vals[0], SampledRows: int64(n), Rows: totalRows}
	rowScale := float64(totalRows) / float64(n)
	// runEnd returns the index one past the equal-value run starting at i.
	runEnd := func(i int) int {
		j := i + 1
		for j < n && datum.Compare(vals[j], vals[i]) == 0 {
			j++
		}
		return j
	}
	start := 0
	for start < n {
		// Accumulate whole runs until the bucket reaches the target depth. A
		// run that is itself at least one depth deep closes the bucket it
		// would join first, so a heavy value never shares a bucket with its
		// lighter neighbors — it gets a dedicated NDV-1 bucket, which is what
		// keeps its true frequency visible to the equality probe. (Such early
		// closures can push the bucket count slightly past HistBuckets; the
		// probe cost stays a short binary search either way.)
		end, ndv := start, int64(0)
		for end < n {
			re := runEnd(end)
			if re-end >= depth && end > start {
				break
			}
			end = re
			ndv++
			if end-start >= depth {
				break
			}
		}
		scaledNDV := int64(float64(ndv)*ndvScale + 0.5)
		if scaledNDV < ndv {
			scaledNDV = ndv
		}
		rows := int64(float64(end-start)*rowScale + 0.5)
		if rows < 1 {
			rows = 1
		}
		if scaledNDV > rows {
			scaledNDV = rows
		}
		h.Buckets = append(h.Buckets, HistBucket{Upper: vals[end-1], Rows: rows, NDV: scaledNDV})
		start = end
	}
	return h
}

// bucketFor locates the bucket whose value range contains d, or -1 when d
// falls outside [Low, max]. Because buckets are run-aligned every value
// belongs to exactly one bucket.
func (h *Histogram) bucketFor(d datum.D) int {
	if len(h.Buckets) == 0 || datum.Compare(d, h.Low) < 0 {
		return -1
	}
	// First bucket with Upper >= d.
	i := sort.Search(len(h.Buckets), func(i int) bool {
		return datum.Compare(h.Buckets[i].Upper, d) >= 0
	})
	if i == len(h.Buckets) {
		return -1
	}
	return i
}

// EqSel estimates the fraction of non-NULL rows equal to d: the containing
// bucket's rows divided by its distinct count. A value outside the
// histogram's range selects (almost) nothing.
func (h *Histogram) EqSel(d datum.D) (float64, bool) {
	if h == nil || h.Rows == 0 || d.IsNull() {
		return 0, false
	}
	i := h.bucketFor(d)
	if i < 0 {
		// Outside the observed range: near zero, floored so a join against
		// an unseen key does not estimate to exactly nothing.
		return clampSel(0, h.Rows), true
	}
	b := h.Buckets[i]
	ndv := b.NDV
	if ndv < 1 {
		ndv = 1
	}
	return clampSel(float64(b.Rows)/float64(ndv)/float64(h.Rows), h.Rows), true
}

// LessSel estimates the fraction of non-NULL rows with value < d (orEq
// includes equality). Numeric containing buckets interpolate linearly
// between the bucket bounds; other types count half the containing bucket.
func (h *Histogram) LessSel(d datum.D, orEq bool) (float64, bool) {
	if h == nil || h.Rows == 0 || d.IsNull() {
		return 0, false
	}
	if datum.Compare(d, h.Low) < 0 {
		return clampSel(0, h.Rows), true
	}
	var below float64
	lower := h.Low
	for i, b := range h.Buckets {
		if datum.Compare(d, b.Upper) > 0 {
			below += float64(b.Rows)
			lower = b.Upper
			continue
		}
		// d falls in bucket i (run-aligned: exactly one bucket).
		frac := 0.5
		if numericD(d) && numericD(b.Upper) && numericD(lower) {
			lo, hi := lower.AsFloat(), b.Upper.AsFloat()
			if hi > lo {
				frac = (d.AsFloat() - lo) / (hi - lo)
			} else {
				frac = 1
			}
		}
		if datum.Compare(d, b.Upper) == 0 {
			frac = 1
		}
		within := float64(b.Rows) * frac
		if !orEq {
			// Exclude the rows equal to d itself.
			if eq, ok := h.EqSel(d); ok {
				within -= eq * float64(h.Rows)
			}
			if i == 0 && datum.Compare(d, h.Low) == 0 {
				within = 0
			}
		}
		if within < 0 {
			within = 0
		}
		below += within
		return clampSel(below/float64(h.Rows), h.Rows), true
	}
	return clampSel(1, h.Rows), true
}

// clampSel bounds a selectivity estimate away from the degenerate 0 and
// above 1: the floor is half a row of the relation the histogram describes.
func clampSel(s float64, rows int64) float64 {
	floor := 0.5 / float64(rows+1)
	if s < floor {
		return floor
	}
	if s > 1 {
		return 1
	}
	return s
}

func numericD(d datum.D) bool { return d.T == datum.TInt || d.T == datum.TFloat }

// String renders a compact summary: bucket count and the heaviest buckets
// (the skew the histogram exists to expose).
func (h *Histogram) String() string {
	if h == nil || len(h.Buckets) == 0 {
		return "(no histogram)"
	}
	heavy := 0
	for i, b := range h.Buckets {
		if b.Rows > h.Buckets[heavy].Rows {
			heavy = i
		}
	}
	b := h.Buckets[heavy]
	mode := "exact"
	if h.Sampled() {
		mode = fmt.Sprintf("sampled %d", h.SampledRows)
	}
	return fmt.Sprintf("%d buckets (%s), heaviest [..%s] rows=%d ndv=%d",
		len(h.Buckets), mode, b.Upper.Format(), b.Rows, b.NDV)
}

// Dump renders every bucket, one per line, for tooling (`.stats table col`).
func (h *Histogram) Dump() string {
	if h == nil || len(h.Buckets) == 0 {
		return "(no histogram)\n"
	}
	var sb strings.Builder
	lower := h.Low
	for i, b := range h.Buckets {
		open := "("
		if i == 0 {
			open = "["
		}
		fmt.Fprintf(&sb, "bucket %2d %s%s .. %s]  rows=%-8d ndv=%d\n",
			i, open, lower.Format(), b.Upper.Format(), b.Rows, b.NDV)
		lower = b.Upper
	}
	return sb.String()
}
