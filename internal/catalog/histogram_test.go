package catalog

import (
	"fmt"
	"math"
	"testing"

	"starmagic/internal/datum"
)

func tableFor(n int, col func(i int) datum.D) (*Table, []datum.Row) {
	t := &Table{Name: "t", Columns: []Column{{Name: "a", Type: datum.TInt}}}
	rows := make([]datum.Row, n)
	for i := range rows {
		rows[i] = datum.Row{col(i)}
	}
	return t, rows
}

func TestHistogramHeavyValueEqSel(t *testing.T) {
	// 99% of rows carry value 7, the rest spread over 200 rare values.
	const n = 20000
	tab, rows := tableFor(n, func(i int) datum.D {
		if i%100 != 0 {
			return datum.Int(7)
		}
		return datum.Int(1000 + int64(i/100)%200)
	})
	AnalyzeTable(tab, rows)
	h := tab.Stats[0].Hist
	if h == nil {
		t.Fatal("no histogram built")
	}
	sel, ok := h.EqSel(datum.Int(7))
	if !ok {
		t.Fatal("EqSel not answered")
	}
	if sel < 0.95 || sel > 1.0 {
		t.Fatalf("heavy value selectivity = %g, want ~0.99", sel)
	}
	// A rare value must not inherit the heavy value's weight.
	rare, ok := h.EqSel(datum.Int(1005))
	if !ok {
		t.Fatal("EqSel not answered for rare value")
	}
	if rare > 0.05 {
		t.Fatalf("rare value selectivity = %g, want small", rare)
	}
	// An absent value estimates to (near) nothing.
	if miss, _ := h.EqSel(datum.Int(999999)); miss > 0.001 {
		t.Fatalf("absent value selectivity = %g, want ~0", miss)
	}
}

func TestHistogramRunAlignment(t *testing.T) {
	// Every distinct value must live in exactly one bucket: bucket uppers
	// strictly increase and no value equals two buckets' ranges.
	const n = 5000
	tab, rows := tableFor(n, func(i int) datum.D { return datum.Int(int64(i) % 97) })
	AnalyzeTable(tab, rows)
	h := tab.Stats[0].Hist
	if h == nil {
		t.Fatal("no histogram built")
	}
	for i := 1; i < len(h.Buckets); i++ {
		if datum.Compare(h.Buckets[i-1].Upper, h.Buckets[i].Upper) >= 0 {
			t.Fatalf("bucket uppers not strictly increasing at %d", i)
		}
	}
	var rowsSum, ndvSum int64
	for _, b := range h.Buckets {
		rowsSum += b.Rows
		ndvSum += b.NDV
	}
	if rowsSum != n {
		t.Fatalf("bucket rows sum = %d, want %d", rowsSum, n)
	}
	if ndvSum != 97 {
		t.Fatalf("bucket NDV sum = %d, want 97", ndvSum)
	}
	if got := h.NDV(); got != 97 {
		t.Fatalf("NDV() = %d, want 97", got)
	}
}

func TestHistogramRangeInterpolation(t *testing.T) {
	// Uniform 0..9999: P(a < k) should be close to k/10000.
	const n = 10000
	tab, rows := tableFor(n, func(i int) datum.D { return datum.Int(int64(i)) })
	AnalyzeTable(tab, rows)
	h := tab.Stats[0].Hist
	for _, k := range []int64{100, 2500, 5000, 9000} {
		sel, ok := h.LessSel(datum.Int(k), false)
		if !ok {
			t.Fatalf("LessSel(%d) not answered", k)
		}
		want := float64(k) / n
		if math.Abs(sel-want) > 0.03 {
			t.Fatalf("LessSel(%d) = %g, want ~%g", k, sel, want)
		}
	}
	// Bounds: below min ~0, above max ~1.
	if sel, _ := h.LessSel(datum.Int(-5), false); sel > 0.001 {
		t.Fatalf("LessSel below min = %g, want ~0", sel)
	}
	if sel, _ := h.LessSel(datum.Int(123456), true); sel < 0.999 {
		t.Fatalf("LessSel above max = %g, want 1", sel)
	}
}

func TestHistogramStringBuckets(t *testing.T) {
	tab := &Table{Name: "t", Columns: []Column{{Name: "s", Type: datum.TString}}}
	rows := make([]datum.Row, 0, 3000)
	for i := 0; i < 3000; i++ {
		// Heavy string value "HQ" at ~90%, rest spread.
		if i%10 != 0 {
			rows = append(rows, datum.Row{datum.String("HQ")})
		} else {
			rows = append(rows, datum.Row{datum.String(fmt.Sprintf("R%03d", i%50))})
		}
	}
	AnalyzeTable(tab, rows)
	h := tab.Stats[0].Hist
	sel, ok := h.EqSel(datum.String("HQ"))
	if !ok || sel < 0.85 {
		t.Fatalf("heavy string selectivity = %g ok=%v, want ~0.9", sel, ok)
	}
}

func TestAnalyzeSampledDistinct(t *testing.T) {
	// Above SampleThreshold rows the distinct map is sampled and scaled with
	// Duj1. A column where every value is distinct must estimate near n; a
	// low-cardinality column must stay near its true NDV.
	const n = SampleThreshold * 4
	allDistinct, rowsA := tableFor(n, func(i int) datum.D { return datum.Int(int64(i)) })
	AnalyzeTable(allDistinct, rowsA)
	if got := allDistinct.Stats[0].DistinctCount; float64(got) < 0.5*n {
		t.Fatalf("all-distinct column: DistinctCount = %d, want >= %d", got, n/2)
	}
	if h := allDistinct.Stats[0].Hist; h == nil || !h.Sampled() {
		t.Fatalf("expected sampled histogram above threshold")
	}
	// Exact pieces stay exact even when sampled.
	if allDistinct.Stats[0].Min.I != 0 || allDistinct.Stats[0].Max.I != n-1 {
		t.Fatalf("min/max not exact under sampling: %v..%v",
			allDistinct.Stats[0].Min, allDistinct.Stats[0].Max)
	}

	lowCard, rowsB := tableFor(n, func(i int) datum.D { return datum.Int(int64(i) % 10) })
	AnalyzeTable(lowCard, rowsB)
	if got := lowCard.Stats[0].DistinctCount; got < 5 || got > 50 {
		t.Fatalf("low-cardinality column: DistinctCount = %d, want ~10", got)
	}
}

func TestAnalyzeNullsAndEmpty(t *testing.T) {
	tab, rows := tableFor(100, func(i int) datum.D {
		if i%2 == 0 {
			return datum.NullOf(datum.TInt)
		}
		return datum.Int(int64(i))
	})
	AnalyzeTable(tab, rows)
	st := tab.Stats[0]
	if st.NullCount != 50 {
		t.Fatalf("NullCount = %d, want 50", st.NullCount)
	}
	if st.DistinctCount != 50 {
		t.Fatalf("DistinctCount = %d, want 50", st.DistinctCount)
	}
	if st.Hist == nil || st.Hist.Rows != 50 {
		t.Fatalf("histogram should cover the 50 non-NULL rows")
	}

	empty, noRows := tableFor(0, nil)
	AnalyzeTable(empty, noRows)
	if empty.Stats[0].Hist != nil {
		t.Fatal("empty table should have no histogram")
	}
	if s, _ := empty.Stats[0].Hist.EqSel(datum.Int(1)); s != 0 {
		t.Fatal("nil histogram EqSel should answer 0,false")
	}
}

func TestHistogramDumpString(t *testing.T) {
	tab, rows := tableFor(1000, func(i int) datum.D { return datum.Int(int64(i) % 7) })
	AnalyzeTable(tab, rows)
	h := tab.Stats[0].Hist
	if h.String() == "" || h.Dump() == "" {
		t.Fatal("String/Dump should render")
	}
	var nilH *Histogram
	if nilH.String() != "(no histogram)" {
		t.Fatal("nil histogram String")
	}
}
