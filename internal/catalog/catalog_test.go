package catalog

import (
	"testing"

	"starmagic/internal/datum"
)

func deptTable() *Table {
	return &Table{
		Name: "department",
		Columns: []Column{
			{Name: "deptno", Type: datum.TInt},
			{Name: "deptname", Type: datum.TString},
			{Name: "mgrno", Type: datum.TInt},
		},
		Keys:    [][]int{{0}},
		Indexes: [][]int{{0}},
	}
}

func TestAddAndResolve(t *testing.T) {
	c := New()
	if err := c.AddTable(deptTable()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("DEPARTMENT"); !ok {
		t.Error("case-insensitive table lookup failed")
	}
	if err := c.AddTable(deptTable()); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := c.AddView(&View{Name: "department", SQL: "SELECT 1"}); err == nil {
		t.Error("view shadowing a table accepted")
	}
	if err := c.AddView(&View{Name: "v", SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.View("V"); !ok {
		t.Error("case-insensitive view lookup failed")
	}
	if err := c.AddTable(&Table{Name: "v"}); err == nil {
		t.Error("table shadowing a view accepted")
	}
	if len(c.Tables()) != 1 || len(c.Views()) != 1 {
		t.Errorf("listing wrong: %d tables, %d views", len(c.Tables()), len(c.Views()))
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	c := New()
	err := c.AddTable(&Table{Name: "t", Columns: []Column{
		{Name: "a", Type: datum.TInt}, {Name: "A", Type: datum.TInt},
	}})
	if err == nil {
		t.Error("duplicate column names accepted")
	}
}

func TestDropView(t *testing.T) {
	c := New()
	if err := c.AddView(&View{Name: "v", SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("v"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.View("v"); ok {
		t.Error("view survived drop")
	}
	if err := c.DropView("v"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestColumnIndex(t *testing.T) {
	d := deptTable()
	if d.ColumnIndex("MGRNO") != 2 {
		t.Error("case-insensitive column index failed")
	}
	if d.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestHasKey(t *testing.T) {
	d := deptTable()
	if !d.HasKey([]int{0}) {
		t.Error("primary key not detected")
	}
	if !d.HasKey([]int{0, 1}) {
		t.Error("superset of key not detected")
	}
	if d.HasKey([]int{1}) {
		t.Error("non-key column reported as key")
	}
	empty := &Table{Name: "e"}
	if empty.HasKey([]int{0}) {
		t.Error("keyless table reported a key")
	}
}

func TestHasIndex(t *testing.T) {
	d := deptTable()
	if !d.HasIndex([]int{0}) {
		t.Error("index on deptno not found")
	}
	if d.HasIndex([]int{1}) {
		t.Error("spurious index")
	}
	multi := &Table{Name: "m", Indexes: [][]int{{2, 0}}}
	if !multi.HasIndex([]int{0, 2}) {
		t.Error("order-insensitive index match failed")
	}
}

func TestAnalyzeTable(t *testing.T) {
	d := deptTable()
	rows := []datum.Row{
		{datum.Int(1), datum.String("Planning"), datum.Int(10)},
		{datum.Int(2), datum.String("Dev"), datum.Int(20)},
		{datum.Int(3), datum.String("Dev"), datum.NullOf(datum.TInt)},
	}
	AnalyzeTable(d, rows)
	if d.RowCount != 3 {
		t.Errorf("RowCount = %d", d.RowCount)
	}
	if d.Stats[0].DistinctCount != 3 || d.Stats[1].DistinctCount != 2 {
		t.Errorf("distinct counts = %d, %d", d.Stats[0].DistinctCount, d.Stats[1].DistinctCount)
	}
	if d.Stats[2].NullCount != 1 || d.Stats[2].DistinctCount != 2 {
		t.Errorf("mgrno stats = %+v", d.Stats[2])
	}
	if d.Stats[0].Min.I != 1 || d.Stats[0].Max.I != 3 {
		t.Errorf("min/max = %#v/%#v", d.Stats[0].Min, d.Stats[0].Max)
	}
}

func TestAnalyzeEmptyTable(t *testing.T) {
	d := deptTable()
	AnalyzeTable(d, nil)
	if d.RowCount != 0 || d.Stats[0].DistinctCount != 0 {
		t.Error("empty-table stats wrong")
	}
}
