package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"starmagic/internal/datum"
)

// collector is a Handler that records everything replayed into it.
type collector struct {
	tables  []TableMeta
	rows    []datum.Row
	begins  []uint64
	views   []ViewMeta
	ckptTS  uint64
	commits []Record
	ddl     []string
}

func (c *collector) CheckpointTable(m TableMeta) error { c.tables = append(c.tables, m); return nil }
func (c *collector) CheckpointRow(row datum.Row, begin uint64) error {
	c.rows = append(c.rows, row.Clone())
	c.begins = append(c.begins, begin)
	return nil
}
func (c *collector) CheckpointView(v ViewMeta) error { c.views = append(c.views, v); return nil }
func (c *collector) CheckpointDone(ts uint64) error  { c.ckptTS = ts; return nil }
func (c *collector) ReplayCommit(ts uint64, ops []Op) error {
	c.commits = append(c.commits, Record{Kind: RecCommit, TS: ts, Ops: append([]Op(nil), ops...)})
	return nil
}
func (c *collector) ReplayDDL(sqlText string) error { c.ddl = append(c.ddl, sqlText); return nil }

func row(vs ...any) datum.Row {
	r := make(datum.Row, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case int:
			r[i] = datum.Int(int64(x))
		case string:
			r[i] = datum.String(x)
		case float64:
			r[i] = datum.Float(x)
		default:
			panic("unsupported test datum")
		}
	}
	return r
}

// sameRow compares rows by their lossless encoding (the identity the log
// itself uses).
func sameRow(a, b datum.Row) bool {
	return bytes.Equal(datum.AppendEncodedRow(nil, a), datum.AppendEncodedRow(nil, b))
}

func TestRecordRoundTrip(t *testing.T) {
	ops := []Op{
		{Table: "emp", Row: row(1, "alice", 3.5)},
		{Table: "emp", Delete: true, Begin: 7, Row: row(2, "bob", 1.25)},
	}
	var buf []byte
	buf = appendRecord(buf, func(b []byte) []byte { return appendCommitPayload(b, 42, ops) })
	buf = appendRecord(buf, func(b []byte) []byte { return appendDDLPayload(b, "DROP TABLE emp") })

	var got []Record
	valid, err := scanRecords(buf, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if valid != int64(len(buf)) {
		t.Fatalf("valid prefix %d, want %d", valid, len(buf))
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d records, want 2", len(got))
	}
	if got[0].Kind != RecCommit || got[0].TS != 42 || len(got[0].Ops) != 2 {
		t.Fatalf("bad commit record: %+v", got[0])
	}
	if op := got[0].Ops[1]; !op.Delete || op.Begin != 7 || op.Table != "emp" {
		t.Fatalf("bad delete op: %+v", op)
	}
	if !sameRow(got[0].Ops[0].Row, row(1, "alice", 3.5)) {
		t.Fatalf("insert row mangled: %v", got[0].Ops[0].Row)
	}
	if got[1].Kind != RecDDL || got[1].SQL != "DROP TABLE emp" {
		t.Fatalf("bad ddl record: %+v", got[1])
	}
}

// TestScanTornTail checks that a truncated or corrupted final frame ends the
// valid prefix at the last whole record, for every possible cut point.
func TestScanTornTail(t *testing.T) {
	var buf []byte
	var bounds []int
	for i := 0; i < 5; i++ {
		buf = appendRecord(buf, func(b []byte) []byte {
			return appendCommitPayload(b, uint64(i+1), []Op{{Table: "t", Row: row(i, "x")}})
		})
		bounds = append(bounds, len(buf))
	}
	wholeBefore := func(cut int) (n int, off int64) {
		for i, b := range bounds {
			if b <= cut {
				n, off = i+1, int64(b)
			}
		}
		return n, off
	}
	for cut := 0; cut <= len(buf); cut++ {
		wantN, wantOff := wholeBefore(cut)
		var n int
		valid, err := scanRecords(buf[:cut], func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n != wantN || valid != wantOff {
			t.Fatalf("cut %d: got %d records / prefix %d, want %d / %d", cut, n, valid, wantN, wantOff)
		}
	}
	// Flip one payload byte of the middle record: scan must stop before it.
	corrupt := append([]byte(nil), buf...)
	corrupt[bounds[1]+frameHeader] ^= 0xff
	var n int
	valid, err := scanRecords(corrupt, func(Record) error { n++; return nil })
	if err != nil || n != 2 || valid != int64(bounds[1]) {
		t.Fatalf("corrupt middle: n=%d valid=%d err=%v", n, valid, err)
	}
}

func TestOpenAppendReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.AppendCommit(1, []Op{{Table: "t", Row: row(1, "a")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendDDL("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(seq); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var c collector
	l2, err := Open(dir, &c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(c.commits) != 1 || c.commits[0].TS != 1 {
		t.Fatalf("replayed commits %+v", c.commits)
	}
	if len(c.ddl) != 1 || c.ddl[0] != "CREATE TABLE t (a INT)" {
		t.Fatalf("replayed ddl %v", c.ddl)
	}
	// Appends after reopen extend the same segment.
	seq, err = l2.AppendCommit(2, []Op{{Table: "t", Row: row(2, "b")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.WaitDurable(seq); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	var c2 collector
	l3, err := Open(dir, &c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(c2.commits) != 2 || c2.commits[1].TS != 2 {
		t.Fatalf("after extend, replayed commits %+v", c2.commits)
	}
}

// TestOpenTruncatesTornTail crashes mid-record (simulated by appending junk
// and a half frame) and checks reopen truncates to the committed prefix.
func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(1, []Op{{Table: "t", Row: row(1, "a")}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segmentPath(dir, 1)
	good, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// A torn frame: plausible length header, body missing.
	torn := append(append([]byte(nil), good...), 0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	var c collector
	l2, err := Open(dir, &c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.commits) != 1 {
		t.Fatalf("replayed %d commits, want 1", len(c.commits))
	}
	// The torn tail must be gone from disk and new appends must land after
	// the valid prefix.
	if _, err := l2.AppendCommit(2, []Op{{Table: "t", Row: row(2, "b")}}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, good) {
		t.Fatal("valid prefix rewritten")
	}
	var n int
	valid, err := scanRecords(data, func(Record) error { n++; return nil })
	if err != nil || n != 2 || valid != int64(len(data)) {
		t.Fatalf("after reopen+append: n=%d valid=%d len=%d err=%v", n, valid, len(data), err)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil, Options{Policy: SyncCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := l.AppendCommit(uint64(w*perWriter+i+1), []Op{{Table: "t", Row: row(i, "v")}})
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.WaitDurable(seq); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := l.Stats()
	if s.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", s.Appends, writers*perWriter)
	}
	if s.Synced != s.Appends {
		t.Fatalf("synced = %d, want %d (every commit acknowledged durable)", s.Synced, s.Appends)
	}
	if s.Fsyncs >= s.Appends {
		t.Fatalf("fsyncs = %d for %d commits: group commit did not batch", s.Fsyncs, s.Appends)
	}
	t.Logf("group commit: %d commits, %d fsyncs (mean batch %.1f)",
		s.Appends, s.Fsyncs, float64(s.Synced)/float64(s.Fsyncs))
}

func TestCheckpointRotateAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendDDL("CREATE TABLE t (a INT, b VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	for ts := uint64(1); ts <= 3; ts++ {
		if _, err := l.AppendCommit(ts, []Op{{Table: "t", Row: row(int(ts), "v")}}); err != nil {
			t.Fatal(err)
		}
	}

	// Checkpoint at ts=3: rotate, then write the image for the new gen.
	gen, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("rotated to gen %d, want 2", gen)
	}
	cw, err := l.BeginCheckpoint(gen, 3)
	if err != nil {
		t.Fatal(err)
	}
	meta := TableMeta{
		Name: "t",
		Columns: []ColumnMeta{
			{Name: "a", Type: datum.TInt}, {Name: "b", Type: datum.TString},
		},
		Keys:    [][]int{{0}},
		Indexes: [][]int{{0}, {1}},
	}
	if err := cw.Table(meta); err != nil {
		t.Fatal(err)
	}
	for ts := uint64(1); ts <= 3; ts++ {
		if err := cw.Row(row(int(ts), "v"), ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.View(ViewMeta{Name: "va", Columns: []string{"x"}, SQL: "SELECT a FROM t"}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Commit(); err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint commit lands in the new segment.
	if _, err := l.AppendCommit(4, []Op{{Table: "t", Row: row(4, "w")}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The superseded segment is pruned.
	if _, err := os.Stat(segmentPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("segment 1 not pruned: %v", err)
	}

	var c collector
	l2, err := Open(dir, &c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if c.ckptTS != 3 {
		t.Fatalf("checkpoint ts %d, want 3", c.ckptTS)
	}
	if len(c.tables) != 1 || c.tables[0].Name != "t" || len(c.tables[0].Columns) != 2 {
		t.Fatalf("checkpoint tables %+v", c.tables)
	}
	if got, want := fmt.Sprint(c.tables[0].Keys), fmt.Sprint(meta.Keys); got != want {
		t.Fatalf("keys %s, want %s", got, want)
	}
	if got, want := fmt.Sprint(c.tables[0].Indexes), fmt.Sprint(meta.Indexes); got != want {
		t.Fatalf("indexes %s, want %s", got, want)
	}
	if len(c.rows) != 3 || c.begins[2] != 3 {
		t.Fatalf("checkpoint rows %v begins %v", c.rows, c.begins)
	}
	if len(c.views) != 1 || c.views[0].SQL != "SELECT a FROM t" {
		t.Fatalf("checkpoint views %+v", c.views)
	}
	// Replay covers only the post-rotation record; the DDL and ts 1-3
	// commits live in the image.
	if len(c.ddl) != 0 {
		t.Fatalf("ddl replayed from pruned segment: %v", c.ddl)
	}
	if len(c.commits) != 1 || c.commits[0].TS != 4 {
		t.Fatalf("replayed commits %+v", c.commits)
	}
}

// TestOrphanCheckpointIgnored simulates a crash between the checkpoint
// rename and the manifest update: the orphan image must be discarded and
// recovery must use the full log.
func TestOrphanCheckpointIgnored(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(1, []Op{{Table: "t", Row: row(1, "a")}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Fabricate an orphan: a checkpoint file the manifest does not name.
	if err := os.WriteFile(checkpointPath(dir, 9), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.tmp"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	var c collector
	l2, err := Open(dir, &c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if c.ckptTS != 0 || len(c.tables) != 0 {
		t.Fatalf("orphan checkpoint was loaded: ts=%d tables=%v", c.ckptTS, c.tables)
	}
	if len(c.commits) != 1 {
		t.Fatalf("replayed %d commits, want 1", len(c.commits))
	}
	if _, err := os.Stat(checkpointPath(dir, 9)); !os.IsNotExist(err) {
		t.Fatal("orphan checkpoint not cleaned")
	}
	if _, err := os.Stat(filepath.Join(dir, "stray.tmp")); !os.IsNotExist(err) {
		t.Fatal("stray temp file not cleaned")
	}
}

func TestCheckpointCRCDetected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	cw, err := l.BeginCheckpoint(gen, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Table(TableMeta{Name: "t", Columns: []ColumnMeta{{Name: "a", Type: datum.TInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Row(row(1), 1); err != nil {
		t.Fatal(err)
	}
	if err := cw.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := checkpointPath(dir, gen)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(ckptMagic)+3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil, Options{}); err == nil {
		t.Fatal("corrupt checkpoint opened without error")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if gen, err := readManifest(dir); err != nil || gen != 0 {
		t.Fatalf("empty dir: gen=%d err=%v", gen, err)
	}
	if err := writeManifest(dir, 17); err != nil {
		t.Fatal(err)
	}
	if gen, err := readManifest(dir); err != nil || gen != 17 {
		t.Fatalf("gen=%d err=%v, want 17", gen, err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("starmagic-wal v1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(dir); err == nil {
		t.Fatal("manifest without checkpoint line accepted")
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(1, nil); err != ErrClosed {
		t.Fatalf("append on closed log: %v, want ErrClosed", err)
	}
}
