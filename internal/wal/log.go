package wal

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when commits are fsynced. All three policies write
// records to the OS before the commit returns, so every acknowledged commit
// survives a crash of the database process (kill -9); the policies differ
// in what survives an operating-system crash or power loss.
type SyncPolicy int32

// Fsync policies, strongest first.
const (
	// SyncCommit (the default) fsyncs before a commit is acknowledged,
	// batched across concurrent committers (group commit). Acknowledged
	// commits survive OS crash and power loss.
	SyncCommit SyncPolicy = iota
	// SyncInterval fsyncs on a background interval (Options.Interval). An
	// OS crash can lose up to one interval of acknowledged commits.
	SyncInterval
	// SyncNever leaves fsync to segment rotation, checkpoints, and Close.
	// An OS crash can lose any commit since the last of those.
	SyncNever
)

// ErrClosed reports an append or sync on a closed log.
var ErrClosed = errors.New("wal: closed")

const defaultSyncInterval = 10 * time.Millisecond

// Stats is a point-in-time snapshot of log activity counters.
type Stats struct {
	// Appends and AppendedBytes count framed records buffered for write.
	Appends       int64
	AppendedBytes int64
	// Fsyncs counts fsync calls on segment files; Synced counts the
	// records those fsyncs made durable, so Synced/Fsyncs is the mean
	// group-commit batch size.
	Fsyncs int64
	Synced int64
	// Rotations counts segment rollovers (one per checkpoint).
	Rotations int64
	// Checkpoints, CheckpointBytes, and CheckpointNanos cover committed
	// checkpoint images (bytes and nanos are of the most recent one).
	Checkpoints     int64
	CheckpointBytes int64
	CheckpointNanos int64
	// SegmentBytes is the current segment's size including unflushed
	// buffer; Gen is its generation.
	SegmentBytes int64
	Gen          uint64
}

// Log is an open write-ahead log. Appends buffer under a short mutex;
// WaitDurable runs the group-commit protocol (see the package comment).
// All methods are safe for concurrent use.
type Log struct {
	dir string

	// mu guards the append state: current segment file, buffer, sequence.
	mu       sync.Mutex
	f        *os.File
	gen      uint64
	buf      []byte
	spare    []byte // recycled flush buffer
	seq      uint64 // sequence number of the last appended record
	segBytes int64

	// flushMu guards the group-commit state. flushing marks the current
	// flush leader; written/durable are the highest record sequences
	// written to the OS and fsynced; err is sticky (a log with a failed
	// write cannot promise durability for anything after it).
	flushMu  sync.Mutex
	flushC   *sync.Cond
	flushing bool
	written  uint64
	durable  uint64
	err      error

	policy   atomic.Int32
	interval atomic.Int64 // SyncInterval period, nanoseconds

	stopC    chan struct{}
	stopOnce sync.Once
	tickWG   sync.WaitGroup

	appends     atomic.Int64
	bytes       atomic.Int64
	fsyncs      atomic.Int64
	synced      atomic.Int64
	rotations   atomic.Int64
	checkpoints atomic.Int64
	ckptBytes   atomic.Int64
	ckptNanos   atomic.Int64
}

// SetPolicy changes the fsync policy for subsequent commits.
func (l *Log) SetPolicy(p SyncPolicy) { l.policy.Store(int32(p)) }

// Policy returns the current fsync policy.
func (l *Log) Policy() SyncPolicy { return SyncPolicy(l.policy.Load()) }

// Stats returns a snapshot of the log's activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	seg, gen := l.segBytes, l.gen
	l.mu.Unlock()
	return Stats{
		Appends:         l.appends.Load(),
		AppendedBytes:   l.bytes.Load(),
		Fsyncs:          l.fsyncs.Load(),
		Synced:          l.synced.Load(),
		Rotations:       l.rotations.Load(),
		Checkpoints:     l.checkpoints.Load(),
		CheckpointBytes: l.ckptBytes.Load(),
		CheckpointNanos: l.ckptNanos.Load(),
		SegmentBytes:    seg,
		Gen:             gen,
	}
}

// SegmentBytes returns the current segment's size (the engine's checkpoint
// trigger watches it).
func (l *Log) SegmentBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segBytes
}

// AppendCommit buffers one committed transaction and returns its sequence
// number for WaitDurable. The engine calls it under the commit mutex after
// stamping the write set, so record order equals commit-timestamp order.
func (l *Log) AppendCommit(ts uint64, ops []Op) (uint64, error) {
	return l.append(func(b []byte) []byte { return appendCommitPayload(b, ts, ops) })
}

// AppendDDL buffers one schema statement and returns its sequence number
// for WaitDurable.
func (l *Log) AppendDDL(sqlText string) (uint64, error) {
	return l.append(func(b []byte) []byte { return appendDDLPayload(b, sqlText) })
}

func (l *Log) append(encode func([]byte) []byte) (uint64, error) {
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	before := len(l.buf)
	l.buf = appendRecord(l.buf, encode)
	l.seq++
	seq := l.seq
	n := int64(len(l.buf) - before)
	l.segBytes += n
	l.mu.Unlock()
	l.appends.Add(1)
	l.bytes.Add(n)
	return seq, nil
}

// WaitDurable blocks until the record is durable under the current policy:
// fsynced under SyncCommit, written to the OS under SyncInterval and
// SyncNever. The first waiter becomes the flush leader and covers every
// record buffered so far in one write (and, under SyncCommit, one fsync);
// later waiters sleep until a leader's pass covers them.
func (l *Log) WaitDurable(seq uint64) error {
	return l.wait(seq, l.Policy() == SyncCommit)
}

// Sync forces everything appended so far to disk, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	return l.wait(seq, true)
}

func (l *Log) wait(seq uint64, fsync bool) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if fsync {
			if l.durable >= seq {
				return nil
			}
		} else if l.written >= seq {
			return nil
		}
		if l.flushing {
			l.flushC.Wait()
			continue
		}
		l.leadFlushLocked(fsync)
	}
}

// leadFlushLocked runs one flush pass as the leader. Called with flushMu
// held and flushing false; flushMu is released around the file I/O so
// followers can queue and appenders are never blocked on the disk.
func (l *Log) leadFlushLocked(fsync bool) {
	l.flushing = true
	l.flushMu.Unlock()
	if fsync {
		// Gather phase: committers woken by the previous fsync need a
		// moment to append their next records; yielding the scheduler
		// twice lets every runnable committer reach its append before
		// this pass snapshots the buffer, so one fsync covers them all.
		// A lone committer loses nothing — with no other runnable
		// goroutines Gosched returns immediately.
		runtime.Gosched()
		runtime.Gosched()
	}
	covered, ferr := l.flushFile(fsync)
	l.flushMu.Lock()
	l.flushing = false
	l.settleLocked(covered, fsync && ferr == nil, ferr)
}

// settleLocked publishes a flush pass's outcome and wakes followers.
func (l *Log) settleLocked(covered uint64, fsynced bool, ferr error) {
	if ferr == nil && covered > l.written {
		l.written = covered
	}
	if fsynced && covered > l.durable {
		l.synced.Add(int64(covered - l.durable))
		l.durable = covered
	}
	if ferr != nil && l.err == nil {
		l.err = ferr
	}
	l.flushC.Broadcast()
}

// flushFile drains the append buffer to the segment file and optionally
// fsyncs. Only one flush runs at a time (leader exclusivity), so writes
// hit the file in append order.
func (l *Log) flushFile(fsync bool) (uint64, error) {
	l.mu.Lock()
	data := l.buf
	covered := l.seq
	f := l.f
	if l.spare != nil {
		l.buf = l.spare[:0]
		l.spare = nil
	} else {
		l.buf = nil
	}
	l.mu.Unlock()
	if f == nil {
		return covered, ErrClosed
	}
	var err error
	if len(data) > 0 {
		_, err = f.Write(data)
		l.mu.Lock()
		if l.spare == nil {
			l.spare = data[:0]
		}
		l.mu.Unlock()
	}
	if err != nil {
		return covered, fmt.Errorf("wal: write segment: %w", err)
	}
	if fsync {
		if err := f.Sync(); err != nil {
			return covered, fmt.Errorf("wal: fsync segment: %w", err)
		}
		l.fsyncs.Add(1)
	}
	return covered, nil
}

// Rotate drains and fsyncs the current segment, then switches appends to a
// fresh segment of the next generation, returning its generation. The
// engine calls it under the commit mutex when starting a checkpoint, so the
// old segments hold exactly the commits the checkpoint image covers.
func (l *Log) Rotate() (uint64, error) {
	// Take the flush-leader slot: no concurrent file I/O during the swap.
	l.flushMu.Lock()
	for l.flushing {
		l.flushC.Wait()
	}
	if l.err != nil {
		defer l.flushMu.Unlock()
		return 0, l.err
	}
	l.flushing = true
	l.flushMu.Unlock()

	covered, err := l.flushFile(true)
	var gen uint64
	if err == nil {
		l.mu.Lock()
		gen = l.gen + 1
		var nf *os.File
		nf, err = os.OpenFile(segmentPath(l.dir, gen), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			l.mu.Unlock()
			err = fmt.Errorf("wal: rotate: %w", err)
		} else {
			old := l.f
			l.f, l.gen, l.segBytes = nf, gen, 0
			l.mu.Unlock()
			old.Close() // contents already fsynced above
			err = syncDir(l.dir)
		}
	}

	l.flushMu.Lock()
	l.flushing = false
	l.settleLocked(covered, err == nil, err)
	l.flushMu.Unlock()
	if err != nil {
		return 0, err
	}
	l.rotations.Add(1)
	return gen, nil
}

// tickLoop drives the SyncInterval policy: a periodic fsync covering
// whatever commits accumulated since the last one.
func (l *Log) tickLoop() {
	defer l.tickWG.Done()
	for {
		iv := time.Duration(l.interval.Load())
		select {
		case <-l.stopC:
			return
		case <-time.After(iv):
			if l.Policy() == SyncInterval {
				_ = l.Sync()
			}
		}
	}
}

// Close fsyncs everything appended so far (any policy) and closes the
// segment file. The log is unusable afterwards.
func (l *Log) Close() error {
	l.stopOnce.Do(func() { close(l.stopC) })
	l.tickWG.Wait()
	err := l.Sync()
	l.mu.Lock()
	f := l.f
	l.f = nil
	l.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
