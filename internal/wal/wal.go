// Package wal gives the engine's MVCC store durability: a write-ahead log
// with group commit, periodic checkpoints, and recovery-on-open.
//
// A data directory holds three kinds of files:
//
//   - MANIFEST — one line naming the generation of the last committed
//     checkpoint (0 until the first checkpoint). Updated atomically by
//     write-to-temp + rename + directory fsync.
//   - checkpoint-<gen>.ckpt — a full image of the database at one commit
//     timestamp T: every table's metadata and the row versions visible at T
//     (with their original begin stamps), plus the view definitions. Rows
//     use the same lossless datum codec as the spill layer.
//   - wal-<gen>.log — log segments. Segment <gen> holds exactly the commits
//     stamped after checkpoint <gen>'s timestamp: taking a checkpoint
//     rotates the log to a fresh segment under the engine's commit mutex,
//     so the split is exact, and committing the checkpoint deletes the
//     older segments.
//
// Log records carry whole transactions: one commit record per Commit (the
// MVCC commit timestamp plus every insert/delete of the write set, in write
// order) and one DDL record per schema statement. Aborted transactions
// write nothing. Records are framed [4-byte length | 4-byte CRC32-C |
// payload]; recovery replays every segment at or after the manifest's
// checkpoint generation in order and truncates the final segment at the
// first incomplete or corrupt record (a torn write from a crash mid-append).
//
// Group commit: Append* only buffers; WaitDurable makes the caller either
// the flush leader — which writes and fsyncs everything buffered so far,
// covering every record appended by concurrently-committing transactions —
// or a follower that sleeps until a leader's fsync covers its record. One
// fsync thus acknowledges a whole batch of commits (Stats.Synced/Fsyncs is
// the mean batch size). See SyncPolicy for the weaker fsync policies.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"starmagic/internal/datum"
)

// Handler receives the recovered database state during Open, in replay
// order: first the checkpoint image (if any), then every log record past it.
// Any error aborts Open.
type Handler interface {
	// CheckpointTable opens a table section of the checkpoint image;
	// CheckpointRow calls that follow belong to it.
	CheckpointTable(meta TableMeta) error
	// CheckpointRow delivers one row version visible at the checkpoint
	// timestamp, with its original MVCC begin stamp (end stamps are implied
	// Live: versions already deleted at the checkpoint are not stored).
	CheckpointRow(row datum.Row, begin uint64) error
	// CheckpointView delivers one view definition.
	CheckpointView(v ViewMeta) error
	// CheckpointDone closes the checkpoint image and reports its commit
	// timestamp. Not called when no checkpoint exists.
	CheckpointDone(ts uint64) error
	// ReplayCommit delivers one committed transaction: its commit timestamp
	// and write set in original order.
	ReplayCommit(ts uint64, ops []Op) error
	// ReplayDDL delivers one schema statement as SQL text.
	ReplayDDL(sql string) error
}

// TableMeta is the schema of one checkpointed table: columns plus the key
// and index column-ordinal sets (statistics are rebuilt by ANALYZE, not
// persisted).
type TableMeta struct {
	Name    string
	Columns []ColumnMeta
	Keys    [][]int
	Indexes [][]int
}

// ColumnMeta is one column of a checkpointed table.
type ColumnMeta struct {
	Name string
	Type datum.Type
}

// ViewMeta is one checkpointed view definition.
type ViewMeta struct {
	Name    string
	Columns []string
	SQL     string
}

// Options configures an opened log.
type Options struct {
	// Policy is the initial fsync policy (default SyncCommit).
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval
	// (default 10ms).
	Interval time.Duration
}

const manifestName = "MANIFEST"

// Open opens (or creates) the write-ahead log in dir, replaying any
// existing state into h: the last committed checkpoint first, then every
// log record past it, in commit order. The final segment is truncated at
// the first torn record. h may be nil (state is scanned but not delivered —
// used by tests and tools). The returned log appends after the replayed
// prefix.
func Open(dir string, h Handler, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	ckptGen, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if err := cleanDir(dir, ckptGen); err != nil {
		return nil, err
	}
	if ckptGen > 0 {
		if err := readCheckpoint(checkpointPath(dir, ckptGen), h); err != nil {
			return nil, err
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, stopC: make(chan struct{})}
	l.flushC = sync.NewCond(&l.flushMu)
	l.policy.Store(int32(opts.Policy))
	iv := opts.Interval
	if iv <= 0 {
		iv = defaultSyncInterval
	}
	l.interval.Store(int64(iv))

	var lastGen uint64
	var lastValid int64
	for i, gen := range segs {
		data, err := os.ReadFile(segmentPath(dir, gen))
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		valid, err := scanRecords(data, func(rec Record) error {
			return dispatch(h, rec)
		})
		if err != nil {
			return nil, err
		}
		if valid < int64(len(data)) && i != len(segs)-1 {
			return nil, fmt.Errorf("wal: segment %d torn mid-sequence (valid prefix %d of %d bytes)",
				gen, valid, len(data))
		}
		lastGen, lastValid = gen, valid
	}
	if len(segs) == 0 {
		gen := ckptGen
		if gen == 0 {
			gen = 1
			if err := writeManifest(dir, 0); err != nil {
				return nil, err
			}
		}
		f, err := os.OpenFile(segmentPath(dir, gen), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.gen = f, gen
	} else {
		f, err := os.OpenFile(segmentPath(dir, lastGen), os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		// Drop the torn tail so new records append to a clean prefix.
		if err := f.Truncate(lastValid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if _, err := f.Seek(lastValid, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.gen, l.segBytes = f, lastGen, lastValid
	}
	l.tickWG.Add(1)
	go l.tickLoop()
	return l, nil
}

func dispatch(h Handler, rec Record) error {
	if h == nil {
		return nil
	}
	switch rec.Kind {
	case RecCommit:
		return h.ReplayCommit(rec.TS, rec.Ops)
	case RecDDL:
		return h.ReplayDDL(rec.SQL)
	}
	return fmt.Errorf("wal: unknown record kind %d", rec.Kind)
}

func segmentPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", gen))
}

func checkpointPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%d.ckpt", gen))
}

// listSegments returns the generations of every wal-<gen>.log in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var gens []uint64
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), "wal-", ".log"); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil || g == 0 {
		return 0, false
	}
	return g, true
}

// cleanDir removes leftovers an interrupted checkpoint can strand: *.tmp
// files, segments older than the committed checkpoint (their state is in
// the checkpoint image), and orphan checkpoint files the manifest does not
// point at (a crash between the checkpoint rename and the manifest update
// leaves one; the manifest is the commit point, so it is dead).
func cleanDir(dir string, ckptGen uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		stale := strings.HasSuffix(name, ".tmp")
		if g, ok := parseGen(name, "wal-", ".log"); ok && g < ckptGen {
			stale = true
		}
		if g, ok := parseGen(name, "checkpoint-", ".ckpt"); ok && g != ckptGen {
			stale = true
		}
		if stale {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
		}
	}
	return nil
}

// readManifest returns the committed checkpoint generation (0 when no
// checkpoint has been taken, or no manifest exists yet).
func readManifest(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	var gen uint64
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "checkpoint "); ok {
			gen, err = strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("wal: bad manifest: %w", err)
			}
			return gen, nil
		}
	}
	return 0, fmt.Errorf("wal: bad manifest: no checkpoint line")
}

// writeManifest atomically replaces the manifest: temp file, fsync, rename,
// directory fsync. After it returns, recovery will use checkpoint gen.
func writeManifest(dir string, gen uint64) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	body := fmt.Sprintf("starmagic-wal v1\ncheckpoint %d\n", gen)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.WriteString(body); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, manifestName))
	}
	if err == nil {
		err = syncDir(dir)
	}
	if err != nil {
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
