package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"starmagic/internal/datum"
)

// RecordKind discriminates log record payloads.
type RecordKind byte

// Record kinds.
const (
	// RecCommit is one committed transaction: its commit timestamp and
	// write set.
	RecCommit RecordKind = 1
	// RecDDL is one schema statement, stored as SQL text.
	RecDDL RecordKind = 2
)

// Op is one row mutation inside a commit record, in write-set order.
type Op struct {
	Table string
	// Delete marks a deleted version; false is an insert. The row of a
	// delete identifies the doomed version together with Begin.
	Delete bool
	// Begin is the deleted version's original begin stamp (deletes only);
	// inserts implicitly begin at the record's commit timestamp.
	Begin uint64
	Row   datum.Row
}

// Record is one decoded log record.
type Record struct {
	Kind RecordKind
	// TS is the commit timestamp (commit records only).
	TS  uint64
	Ops []Op
	// SQL is the schema statement text (DDL records only).
	SQL string
}

const (
	// frameHeader is the per-record frame: 4-byte little-endian payload
	// length plus 4-byte CRC32-C of the payload.
	frameHeader = 8
	// maxRecordBytes bounds a single record (a bulk load commits as one
	// record, so the cap is generous); a larger length field means a torn
	// or corrupt frame.
	maxRecordBytes = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames one record into buf: encode writes the payload after
// a reserved header, which is then backfilled with length and CRC.
func appendRecord(buf []byte, encode func([]byte) []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = encode(buf)
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

func appendCommitPayload(buf []byte, ts uint64, ops []Op) []byte {
	buf = append(buf, byte(RecCommit))
	buf = binary.AppendUvarint(buf, ts)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		var flag byte
		if op.Delete {
			flag = 1
		}
		buf = append(buf, flag)
		buf = binary.AppendUvarint(buf, uint64(len(op.Table)))
		buf = append(buf, op.Table...)
		if op.Delete {
			buf = binary.AppendUvarint(buf, op.Begin)
		}
		buf = datum.AppendEncodedRow(buf, op.Row)
	}
	return buf
}

func appendDDLPayload(buf []byte, sqlText string) []byte {
	buf = append(buf, byte(RecDDL))
	return append(buf, sqlText...)
}

func decodePayload(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("wal: empty record payload")
	}
	kind, rest := RecordKind(payload[0]), payload[1:]
	switch kind {
	case RecDDL:
		return Record{Kind: RecDDL, SQL: string(rest)}, nil
	case RecCommit:
		rec := Record{Kind: RecCommit}
		var err error
		if rec.TS, rest, err = takeUvarint(rest); err != nil {
			return Record{}, err
		}
		var nops uint64
		if nops, rest, err = takeUvarint(rest); err != nil {
			return Record{}, err
		}
		if nops > uint64(len(rest)) { // each op is at least one byte
			return Record{}, fmt.Errorf("wal: commit record claims %d ops in %d bytes", nops, len(rest))
		}
		rec.Ops = make([]Op, nops)
		for i := range rec.Ops {
			op := &rec.Ops[i]
			if len(rest) == 0 {
				return Record{}, fmt.Errorf("wal: truncated commit op")
			}
			op.Delete = rest[0]&1 != 0
			rest = rest[1:]
			var n uint64
			if n, rest, err = takeUvarint(rest); err != nil {
				return Record{}, err
			}
			if n > uint64(len(rest)) {
				return Record{}, fmt.Errorf("wal: truncated table name")
			}
			op.Table = string(rest[:n])
			rest = rest[n:]
			if op.Delete {
				if op.Begin, rest, err = takeUvarint(rest); err != nil {
					return Record{}, err
				}
			}
			if op.Row, rest, err = datum.DecodeRow(rest); err != nil {
				return Record{}, fmt.Errorf("wal: %w", err)
			}
		}
		if len(rest) != 0 {
			return Record{}, fmt.Errorf("wal: %d trailing bytes in commit record", len(rest))
		}
		return rec, nil
	}
	return Record{}, fmt.Errorf("wal: unknown record kind %d", kind)
}

func takeUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: bad uvarint")
	}
	return v, buf[n:], nil
}

// scanRecords decodes the valid record prefix of a segment image, calling
// fn per record, and returns the prefix length in bytes. An incomplete or
// CRC-failing frame ends the prefix (a torn final write); fn errors abort
// the scan.
func scanRecords(data []byte, fn func(Record) error) (int64, error) {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return int64(off), nil
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecordBytes || len(data)-off-frameHeader < int(n) {
			return int64(off), nil
		}
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.Checksum(payload, crcTable) != crc {
			return int64(off), nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return int64(off), nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return int64(off), err
			}
		}
		off += frameHeader + int(n)
	}
}

// ScanSegment decodes one segment file, calling fn per valid record in
// order, and returns the length of the valid record prefix. Crash-injection
// tests use it as the replay oracle: the recovered database state must
// equal the in-order application of exactly these records.
func ScanSegment(path string, fn func(Record) error) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	return scanRecords(data, fn)
}
