package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"starmagic/internal/datum"
)

// Checkpoint file layout: an 8-byte magic, the checkpoint's commit
// timestamp, then tagged sections — 'T' opens a table (metadata), 'R' rows
// belong to the last opened table (begin stamp + lossless row encoding),
// 'V' is a view definition — terminated by 'Z' and a CRC32-C of everything
// before it. The image is written to a temp file, fsynced, and renamed;
// the manifest update that follows is the commit point.
const ckptMagic = "SMWCKPT1"

const (
	secTable = 'T'
	secRow   = 'R'
	secView  = 'V'
	secEnd   = 'Z'
)

// CheckpointWriter streams one checkpoint image. Produce it with
// Log.BeginCheckpoint, feed it every table and view, then Commit (or Abort
// to discard). Not safe for concurrent use.
type CheckpointWriter struct {
	l       *Log
	gen     uint64
	tmp     string
	f       *os.File
	bw      *bufio.Writer
	crc     uint32
	n       int64
	start   time.Time
	scratch []byte
	err     error
}

// BeginCheckpoint starts writing the checkpoint image for generation gen
// (the value a preceding Rotate returned) at commit timestamp ts.
func (l *Log) BeginCheckpoint(gen, ts uint64) (*CheckpointWriter, error) {
	tmp := checkpointPath(l.dir, gen) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: begin checkpoint: %w", err)
	}
	cw := &CheckpointWriter{l: l, gen: gen, tmp: tmp, f: f, bw: bufio.NewWriterSize(f, 1<<16), start: time.Now()}
	cw.scratch = append(cw.scratch, ckptMagic...)
	cw.scratch = binary.AppendUvarint(cw.scratch, ts)
	cw.flushScratch()
	return cw, nil
}

func (cw *CheckpointWriter) flushScratch() {
	if cw.err == nil {
		cw.crc = crc32.Update(cw.crc, crcTable, cw.scratch)
		if _, err := cw.bw.Write(cw.scratch); err != nil {
			cw.err = fmt.Errorf("wal: write checkpoint: %w", err)
		}
		cw.n += int64(len(cw.scratch))
	}
	cw.scratch = cw.scratch[:0]
}

// Table opens a table section; subsequent Row calls belong to it.
func (cw *CheckpointWriter) Table(m TableMeta) error {
	b := cw.scratch
	b = append(b, secTable)
	b = appendString(b, m.Name)
	b = binary.AppendUvarint(b, uint64(len(m.Columns)))
	for _, c := range m.Columns {
		b = appendString(b, c.Name)
		b = append(b, byte(c.Type))
	}
	b = appendOrdSets(b, m.Keys)
	b = appendOrdSets(b, m.Indexes)
	cw.scratch = b
	cw.flushScratch()
	return cw.err
}

// Row adds one visible row version, with its begin stamp, to the table
// opened by the last Table call. Its signature matches the row callback of
// the engine's relation dump, so it can be passed directly.
func (cw *CheckpointWriter) Row(row datum.Row, begin uint64) error {
	b := append(cw.scratch, secRow)
	b = binary.AppendUvarint(b, begin)
	cw.scratch = datum.AppendEncodedRow(b, row)
	cw.flushScratch()
	return cw.err
}

// View adds one view definition.
func (cw *CheckpointWriter) View(v ViewMeta) error {
	b := append(cw.scratch, secView)
	b = appendString(b, v.Name)
	b = binary.AppendUvarint(b, uint64(len(v.Columns)))
	for _, c := range v.Columns {
		b = appendString(b, c)
	}
	cw.scratch = appendString(b, v.SQL)
	cw.flushScratch()
	return cw.err
}

// Commit finishes the image and makes it the recovery baseline: end marker
// and CRC, fsync, rename into place, manifest update, then deletion of the
// segments and checkpoint the new image supersedes. After Commit returns
// nil, recovery starts from this checkpoint.
func (cw *CheckpointWriter) Commit() error {
	cw.scratch = append(cw.scratch, secEnd)
	cw.flushScratch()
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if cw.err == nil {
		if _, err := cw.bw.Write(tail[:]); err != nil {
			cw.err = fmt.Errorf("wal: write checkpoint: %w", err)
		}
		cw.n += 4
	}
	if cw.err == nil {
		if err := cw.bw.Flush(); err != nil {
			cw.err = fmt.Errorf("wal: write checkpoint: %w", err)
		}
	}
	if cw.err == nil {
		if err := cw.f.Sync(); err != nil {
			cw.err = fmt.Errorf("wal: fsync checkpoint: %w", err)
		}
	}
	if cerr := cw.f.Close(); cw.err == nil && cerr != nil {
		cw.err = fmt.Errorf("wal: close checkpoint: %w", cerr)
	}
	if cw.err != nil {
		os.Remove(cw.tmp)
		return cw.err
	}
	if err := os.Rename(cw.tmp, checkpointPath(cw.l.dir, cw.gen)); err != nil {
		return fmt.Errorf("wal: commit checkpoint: %w", err)
	}
	if err := syncDir(cw.l.dir); err != nil {
		return err
	}
	if err := writeManifest(cw.l.dir, cw.gen); err != nil {
		return err
	}
	// The manifest now points past them: older segments and the previous
	// checkpoint are dead weight (failures here are retried by the next
	// checkpoint's cleanup, and by cleanDir at open).
	_ = cleanDir(cw.l.dir, cw.gen)
	cw.l.checkpoints.Add(1)
	cw.l.ckptBytes.Store(cw.n)
	cw.l.ckptNanos.Store(time.Since(cw.start).Nanoseconds())
	return nil
}

// Abort discards the partially-written image.
func (cw *CheckpointWriter) Abort() {
	cw.f.Close()
	os.Remove(cw.tmp)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendOrdSets(b []byte, sets [][]int) []byte {
	b = binary.AppendUvarint(b, uint64(len(sets)))
	for _, set := range sets {
		b = binary.AppendUvarint(b, uint64(len(set)))
		for _, ord := range set {
			b = binary.AppendUvarint(b, uint64(ord))
		}
	}
	return b
}

// readCheckpoint loads a committed checkpoint image and streams it into h.
// The CRC is verified over the whole file before anything is delivered.
func readCheckpoint(path string, h Handler) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(ckptMagic)+5 || string(data[:len(ckptMagic)]) != ckptMagic {
		return fmt.Errorf("wal: %s: not a checkpoint image", path)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("wal: %s: checkpoint CRC mismatch", path)
	}
	if body[len(body)-1] != secEnd {
		return fmt.Errorf("wal: %s: checkpoint missing end marker", path)
	}
	rest := body[len(ckptMagic):]
	ts, rest, err := takeUvarint(rest)
	if err != nil {
		return err
	}
	inTable := false
	for {
		if len(rest) == 0 {
			return fmt.Errorf("wal: %s: truncated checkpoint", path)
		}
		tag := rest[0]
		rest = rest[1:]
		switch tag {
		case secEnd:
			if len(rest) != 0 {
				return fmt.Errorf("wal: %s: data after end marker", path)
			}
			if h != nil {
				return h.CheckpointDone(ts)
			}
			return nil
		case secTable:
			var m TableMeta
			if m.Name, rest, err = takeString(rest); err != nil {
				return err
			}
			var ncols uint64
			if ncols, rest, err = takeUvarint(rest); err != nil {
				return err
			}
			if ncols > uint64(len(rest)) {
				return fmt.Errorf("wal: %s: corrupt table section", path)
			}
			m.Columns = make([]ColumnMeta, ncols)
			for i := range m.Columns {
				if m.Columns[i].Name, rest, err = takeString(rest); err != nil {
					return err
				}
				if len(rest) == 0 {
					return fmt.Errorf("wal: %s: truncated column type", path)
				}
				m.Columns[i].Type = datum.Type(rest[0])
				rest = rest[1:]
			}
			if m.Keys, rest, err = takeOrdSets(rest); err != nil {
				return err
			}
			if m.Indexes, rest, err = takeOrdSets(rest); err != nil {
				return err
			}
			inTable = true
			if h != nil {
				if err := h.CheckpointTable(m); err != nil {
					return err
				}
			}
		case secRow:
			if !inTable {
				return fmt.Errorf("wal: %s: row outside a table section", path)
			}
			var begin uint64
			if begin, rest, err = takeUvarint(rest); err != nil {
				return err
			}
			var row datum.Row
			if row, rest, err = datum.DecodeRow(rest); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			if h != nil {
				if err := h.CheckpointRow(row, begin); err != nil {
					return err
				}
			}
		case secView:
			inTable = false
			var v ViewMeta
			if v.Name, rest, err = takeString(rest); err != nil {
				return err
			}
			var ncols uint64
			if ncols, rest, err = takeUvarint(rest); err != nil {
				return err
			}
			if ncols > uint64(len(rest)) {
				return fmt.Errorf("wal: %s: corrupt view section", path)
			}
			v.Columns = make([]string, ncols)
			for i := range v.Columns {
				if v.Columns[i], rest, err = takeString(rest); err != nil {
					return err
				}
			}
			if v.SQL, rest, err = takeString(rest); err != nil {
				return err
			}
			if h != nil {
				if err := h.CheckpointView(v); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("wal: %s: unknown checkpoint section %q", path, tag)
		}
	}
}

func takeString(buf []byte) (string, []byte, error) {
	n, rest, err := takeUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("wal: truncated string")
	}
	return string(rest[:n]), rest[n:], nil
}

func takeOrdSets(buf []byte) ([][]int, []byte, error) {
	n, rest, err := takeUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("wal: corrupt ordinal sets")
	}
	var sets [][]int
	for i := uint64(0); i < n; i++ {
		var sz uint64
		if sz, rest, err = takeUvarint(rest); err != nil {
			return nil, nil, err
		}
		if sz > uint64(len(rest)) {
			return nil, nil, fmt.Errorf("wal: corrupt ordinal set")
		}
		set := make([]int, sz)
		for j := range set {
			var v uint64
			if v, rest, err = takeUvarint(rest); err != nil {
				return nil, nil, err
			}
			set[j] = int(v)
		}
		sets = append(sets, set)
	}
	return sets, rest, nil
}
