package sql

import "testing"

func kinds(ts []Token) []TokenKind {
	out := make([]TokenKind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	ts, err := Tokenize("SELECT d.deptname, AVG(salary) FROM dept d WHERE x >= 1.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT", "d", ".", "deptname", ",", "AVG", "(", "salary", ")",
		"FROM", "dept", "d", "WHERE", "x", ">=", "1.5", ""}
	if len(ts) != len(want) {
		t.Fatalf("got %d tokens; want %d: %v", len(ts), len(want), ts)
	}
	for i, w := range want[:len(want)-1] {
		if ts[i].Text != w {
			t.Errorf("token %d = %q; want %q", i, ts[i].Text, w)
		}
	}
	if ts[len(ts)-1].Kind != TokEOF {
		t.Error("missing EOF")
	}
}

func TestKeywordsUppercased(t *testing.T) {
	ts, err := Tokenize("select From wHeRe")
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []string{"SELECT", "FROM", "WHERE"} {
		if ts[i].Kind != TokKeyword || ts[i].Text != w {
			t.Errorf("token %d = %v; want keyword %s", i, ts[i], w)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	ts, err := Tokenize("'Planning' 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Text != "Planning" || ts[1].Text != "it's" {
		t.Errorf("strings = %q, %q", ts[0].Text, ts[1].Text)
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	ts, err := Tokenize(`"Group" x`)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Kind != TokIdent || ts[0].Text != "Group" {
		t.Errorf("quoted ident = %v", ts[0])
	}
	if _, err := Tokenize(`"open`); err == nil {
		t.Error("unterminated quoted identifier accepted")
	}
}

func TestComments(t *testing.T) {
	ts, err := Tokenize("SELECT -- inline\n 1 /* block\ncomment */ + 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range ts {
		if tok.Kind != TokEOF {
			texts = append(texts, tok.Text)
		}
	}
	want := []string{"SELECT", "1", "+", "2"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	if _, err := Tokenize("/* open"); err == nil {
		t.Error("unterminated block comment accepted")
	}
}

func TestMultiCharPunct(t *testing.T) {
	ts, err := Tokenize("a <= b >= c <> d != e || f")
	if err != nil {
		t.Fatal(err)
	}
	var puncts []string
	for _, tok := range ts {
		if tok.Kind == TokPunct {
			puncts = append(puncts, tok.Text)
		}
	}
	want := []string{"<=", ">=", "<>", "<>", "||"}
	for i, w := range want {
		if puncts[i] != w {
			t.Errorf("punct %d = %q; want %q", i, puncts[i], w)
		}
	}
}

func TestNumbers(t *testing.T) {
	ts, err := Tokenize("1 2.5 .75 100.")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", ".75", "100."}
	for i, w := range want {
		if ts[i].Kind != TokNumber || ts[i].Text != w {
			t.Errorf("number %d = %v; want %q", i, ts[i], w)
		}
	}
}

func TestPositions(t *testing.T) {
	ts, err := Tokenize("SELECT\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Line != 1 || ts[0].Col != 1 {
		t.Errorf("SELECT at %d:%d", ts[0].Line, ts[0].Col)
	}
	if ts[1].Line != 2 || ts[1].Col != 3 {
		t.Errorf("x at %d:%d; want 2:3", ts[1].Line, ts[1].Col)
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := Tokenize("SELECT @"); err == nil {
		t.Error("@ accepted")
	}
}
