package sql

// CountParams returns the number of `?` placeholders in a statement,
// walking every expression position including subqueries. The parser
// numbers placeholders sequentially across one parse, so the count equals
// the highest ordinal plus one. The engine uses this to reject parameters
// where no bindings can be supplied (DDL and DML).
func CountParams(st Statement) int {
	n := 0
	note := func(e Expr) bool {
		if _, ok := e.(*Param); ok {
			n++
		}
		return true
	}
	var walkQuery func(q QueryExpr)
	walkExpr := func(e Expr) {
		walkSQLExprDeep(e, note, walkQuery)
	}
	walkQuery = func(q QueryExpr) {
		switch x := q.(type) {
		case nil:
		case *Select:
			for _, it := range x.Items {
				if !it.Star {
					walkExpr(it.Expr)
				}
			}
			for _, fr := range x.From {
				if fr.Subquery != nil {
					walkQuery(fr.Subquery)
				}
			}
			walkExpr(x.Where)
			for _, g := range x.GroupBy {
				walkExpr(g)
			}
			walkExpr(x.Having)
			for _, oi := range x.OrderBy {
				walkExpr(oi.Expr)
			}
		case *SetOp:
			walkQuery(x.Left)
			walkQuery(x.Right)
		}
	}
	switch s := st.(type) {
	case *SelectStatement:
		walkQuery(s.Query)
	case *CreateView:
		walkQuery(s.Query)
	case *Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExpr(e)
			}
		}
		walkQuery(s.Query)
	case *Delete:
		walkExpr(s.Where)
	case *Update:
		for _, a := range s.Set {
			walkExpr(a.Expr)
		}
		walkExpr(s.Where)
	}
	return n
}

// QueryParams counts `?` placeholders in a query expression.
func QueryParams(q QueryExpr) int {
	return CountParams(&SelectStatement{Query: q})
}

// walkSQLExprDeep visits e and (when fn returns true) its children,
// descending into subquery expressions through sub.
func walkSQLExprDeep(e Expr, fn func(Expr) bool, sub func(QueryExpr)) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Bin:
		walkSQLExprDeep(x.L, fn, sub)
		walkSQLExprDeep(x.R, fn, sub)
	case *Unary:
		walkSQLExprDeep(x.X, fn, sub)
	case *IsNull:
		walkSQLExprDeep(x.X, fn, sub)
	case *Between:
		walkSQLExprDeep(x.X, fn, sub)
		walkSQLExprDeep(x.Lo, fn, sub)
		walkSQLExprDeep(x.Hi, fn, sub)
	case *Like:
		walkSQLExprDeep(x.X, fn, sub)
	case *In:
		walkSQLExprDeep(x.X, fn, sub)
		for _, le := range x.List {
			walkSQLExprDeep(le, fn, sub)
		}
		if x.Sub != nil {
			sub(x.Sub)
		}
	case *Exists:
		sub(x.Sub)
	case *QuantCmp:
		walkSQLExprDeep(x.X, fn, sub)
		sub(x.Sub)
	case *ScalarSub:
		sub(x.Sub)
	case *FuncCall:
		for _, a := range x.Args {
			walkSQLExprDeep(a, fn, sub)
		}
	case *Case:
		walkSQLExprDeep(x.Operand, fn, sub)
		for _, w := range x.Whens {
			walkSQLExprDeep(w.When, fn, sub)
			walkSQLExprDeep(w.Then, fn, sub)
		}
		walkSQLExprDeep(x.Else, fn, sub)
	}
}
