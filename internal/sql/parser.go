package sql

import (
	"fmt"
	"strconv"
	"strings"

	"starmagic/internal/datum"
)

// Parser is a recursive-descent SQL parser.
type Parser struct {
	lex  *Lexer
	tok  Token // current token
	nxt  Token // one-token lookahead
	nxt2 Token // two-token lookahead (needed for "t . *" select items)
	err  error
	// params counts `?` placeholders seen so far; each gets the next
	// zero-based ordinal in source order.
	params int
}

// NewParser returns a parser over src.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lex: NewLexer(src)}
	var err error
	if p.tok, err = p.lex.Next(); err != nil {
		return nil, err
	}
	if p.nxt, err = p.lex.Next(); err != nil {
		return nil, err
	}
	if p.nxt2, err = p.lex.Next(); err != nil {
		return nil, err
	}
	return p, nil
}

// Parse parses a single statement from src, requiring full consumption
// (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseQuery parses src as a query expression.
func ParseQuery(src string) (QueryExpr, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStatement)
	if !ok {
		return nil, fmt.Errorf("expected a query, got %T", st)
	}
	return sel.Query, nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	var out []Statement
	for {
		for p.tok.Kind == TokPunct && p.tok.Text == ";" {
			p.advance()
		}
		if p.tok.Kind == TokEOF {
			break
		}
		st := p.parseStatement()
		if p.err != nil {
			return nil, p.err
		}
		out = append(out, st)
		if p.tok.Kind != TokEOF && !(p.tok.Kind == TokPunct && p.tok.Text == ";") {
			return nil, p.errorf("unexpected %s after statement", p.tok)
		}
	}
	return out, nil
}

func (p *Parser) errorf(format string, args ...any) error {
	if p.err == nil {
		p.err = &Error{Line: p.tok.Line, Col: p.tok.Col, Msg: fmt.Sprintf(format, args...)}
	}
	return p.err
}

func (p *Parser) advance() Token {
	t := p.tok
	p.tok = p.nxt
	p.nxt = p.nxt2
	var err error
	p.nxt2, err = p.lex.Next()
	if err != nil && p.err == nil {
		p.err = err
		p.nxt2 = Token{Kind: TokEOF}
	}
	return t
}

func (p *Parser) isKeyword(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == kw
}

func (p *Parser) nextIsKeyword(kw string) bool {
	return p.nxt.Kind == TokKeyword && p.nxt.Text == kw
}

func (p *Parser) isPunct(s string) bool {
	return p.tok.Kind == TokPunct && p.tok.Text == s
}

// accept consumes the keyword if present.
func (p *Parser) accept(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

// acceptPunct consumes the punct if present.
func (p *Parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(kw string) {
	if !p.accept(kw) {
		p.errorf("expected %s, got %s", kw, p.tok)
	}
}

func (p *Parser) expectPunct(s string) {
	if !p.acceptPunct(s) {
		p.errorf("expected %q, got %s", s, p.tok)
	}
}

func (p *Parser) expectIdent() string {
	if p.tok.Kind != TokIdent {
		// Be permissive: non-reserved-looking keywords are still rejected;
		// that keeps the grammar predictable.
		p.errorf("expected identifier, got %s", p.tok)
		return ""
	}
	return p.advance().Text
}

func (p *Parser) parseStatement() Statement {
	switch {
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("DROP"):
		p.advance()
		if p.accept("TABLE") {
			return &DropTable{Name: p.expectIdent()}
		}
		p.expect("VIEW")
		return &DropView{Name: p.expectIdent()}
	case p.isKeyword("DELETE"):
		p.advance()
		p.expect("FROM")
		d := &Delete{Table: p.expectIdent()}
		if p.accept("WHERE") {
			d.Where = p.parseExpr()
		}
		return d
	case p.isKeyword("UPDATE"):
		p.advance()
		u := &Update{Table: p.expectIdent()}
		p.expect("SET")
		for {
			a := Assignment{Column: p.expectIdent()}
			p.expectPunct("=")
			a.Expr = p.parseExpr()
			u.Set = append(u.Set, a)
			if !p.acceptPunct(",") {
				break
			}
		}
		if p.accept("WHERE") {
			u.Where = p.parseExpr()
		}
		return u
	case p.isKeyword("SELECT") || p.isPunct("("):
		q := p.parseQueryExpr()
		return &SelectStatement{Query: q}
	default:
		p.errorf("expected a statement, got %s", p.tok)
		return nil
	}
}

func (p *Parser) parseCreate() Statement {
	start := p.tok
	p.expect("CREATE")
	unique := p.accept("UNIQUE")
	switch {
	case p.isKeyword("TABLE"):
		if unique {
			p.errorf("UNIQUE is not valid before TABLE")
			return nil
		}
		return p.parseCreateTable()
	case p.isKeyword("VIEW"):
		if unique {
			p.errorf("UNIQUE is not valid before VIEW")
			return nil
		}
		return p.parseCreateView()
	case p.isKeyword("INDEX"):
		p.advance()
		ci := &CreateIndex{Unique: unique}
		ci.Name = p.expectIdent()
		p.expect("ON")
		ci.Table = p.expectIdent()
		p.expectPunct("(")
		for {
			ci.Cols = append(ci.Cols, p.expectIdent())
			if !p.acceptPunct(",") {
				break
			}
		}
		p.expectPunct(")")
		return ci
	default:
		p.err = &Error{Line: start.Line, Col: start.Col, Msg: fmt.Sprintf("expected TABLE, VIEW, or INDEX after CREATE, got %s", p.tok)}
		return nil
	}
}

func (p *Parser) parseCreateTable() Statement {
	p.expect("TABLE")
	ct := &CreateTable{Name: p.expectIdent()}
	p.expectPunct("(")
	for {
		if p.isKeyword("PRIMARY") {
			p.advance()
			p.expect("KEY")
			p.expectPunct("(")
			for {
				ct.PrimaryKey = append(ct.PrimaryKey, p.expectIdent())
				if !p.acceptPunct(",") {
					break
				}
			}
			p.expectPunct(")")
		} else if p.isKeyword("UNIQUE") {
			p.advance()
			p.expectPunct("(")
			var cols []string
			for {
				cols = append(cols, p.expectIdent())
				if !p.acceptPunct(",") {
					break
				}
			}
			p.expectPunct(")")
			ct.Uniques = append(ct.Uniques, cols)
		} else {
			name := p.expectIdent()
			if p.err != nil {
				return nil
			}
			var typeName string
			if p.tok.Kind == TokIdent {
				typeName = p.advance().Text
			} else {
				p.errorf("expected type name, got %s", p.tok)
				return nil
			}
			typ, err := datum.TypeFromName(typeName)
			if err != nil {
				p.errorf("%v", err)
				return nil
			}
			// Swallow an optional length like VARCHAR(20).
			if p.acceptPunct("(") {
				if p.tok.Kind != TokNumber {
					p.errorf("expected length, got %s", p.tok)
					return nil
				}
				p.advance()
				p.expectPunct(")")
			}
			ct.Cols = append(ct.Cols, ColDef{Name: name, Type: typ})
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	p.expectPunct(")")
	return ct
}

func (p *Parser) parseCreateView() Statement {
	p.expect("VIEW")
	cv := &CreateView{Name: p.expectIdent()}
	if p.acceptPunct("(") {
		for {
			cv.Cols = append(cv.Cols, p.expectIdent())
			if !p.acceptPunct(",") {
				break
			}
		}
		p.expectPunct(")")
	}
	p.expect("AS")
	cv.Query = p.parseQueryExpr()
	if p.err == nil {
		// Canonical body text, stored in the catalog for re-expansion.
		cv.SQL = FormatQuery(cv.Query)
	}
	return cv
}

func (p *Parser) parseInsert() Statement {
	p.expect("INSERT")
	p.expect("INTO")
	ins := &Insert{Table: p.expectIdent()}
	if p.isKeyword("SELECT") || p.isPunct("(") && p.nxt.Kind == TokKeyword && p.nxt.Text == "SELECT" {
		ins.Query = p.parseQueryExpr()
		return ins
	}
	p.expect("VALUES")
	for {
		p.expectPunct("(")
		var row []Expr
		for {
			row = append(row, p.parseExpr())
			if !p.acceptPunct(",") {
				break
			}
		}
		p.expectPunct(")")
		ins.Rows = append(ins.Rows, row)
		if !p.acceptPunct(",") {
			break
		}
	}
	return ins
}

// parseQueryExpr parses a query with set operations. UNION and EXCEPT are
// left-associative at the same precedence; INTERSECT binds tighter, per the
// SQL standard.
func (p *Parser) parseQueryExpr() QueryExpr {
	left := p.parseQueryTerm()
	for p.isKeyword("UNION") || p.isKeyword("EXCEPT") {
		op := Union
		if p.tok.Text == "EXCEPT" {
			op = Except
		}
		p.advance()
		all := p.accept("ALL")
		if !all {
			p.accept("DISTINCT")
		}
		right := p.parseQueryTerm()
		left = &SetOp{Op: op, All: all, Left: left, Right: right}
	}
	return left
}

func (p *Parser) parseQueryTerm() QueryExpr {
	left := p.parseQueryPrimary()
	for p.isKeyword("INTERSECT") {
		p.advance()
		all := p.accept("ALL")
		if !all {
			p.accept("DISTINCT")
		}
		right := p.parseQueryPrimary()
		left = &SetOp{Op: Intersect, All: all, Left: left, Right: right}
	}
	return left
}

func (p *Parser) parseQueryPrimary() QueryExpr {
	if p.acceptPunct("(") {
		q := p.parseQueryExpr()
		p.expectPunct(")")
		return q
	}
	return p.parseSelect()
}

func (p *Parser) parseSelect() *Select {
	p.expect("SELECT")
	sel := &Select{Limit: -1}
	if p.accept("DISTINCT") {
		sel.Distinct = true
	} else {
		p.accept("ALL")
	}
	for {
		sel.Items = append(sel.Items, p.parseSelectItem())
		if !p.acceptPunct(",") {
			break
		}
	}
	var joinConds []Expr
	if p.accept("FROM") {
		for {
			refs, conds := p.parseJoinChain()
			sel.From = append(sel.From, refs...)
			joinConds = append(joinConds, conds...)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.accept("WHERE") {
		sel.Where = p.parseExpr()
	}
	// Desugar JOIN ... ON conditions into the WHERE conjunction.
	for _, c := range joinConds {
		if sel.Where == nil {
			sel.Where = c
		} else {
			sel.Where = &Bin{Op: OpAnd, L: sel.Where, R: c}
		}
	}
	if p.isKeyword("GROUPBY") || (p.isKeyword("GROUP") && p.nextIsKeyword("BY")) {
		if p.accept("GROUP") {
			p.expect("BY")
		} else {
			p.expect("GROUPBY")
		}
		for {
			sel.GroupBy = append(sel.GroupBy, p.parseExpr())
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.accept("HAVING") {
		sel.Having = p.parseExpr()
	}
	if p.isKeyword("ORDER") {
		p.advance()
		p.expect("BY")
		for {
			item := OrderItem{Expr: p.parseExpr()}
			if p.accept("DESC") {
				item.Desc = true
			} else {
				p.accept("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.accept("LIMIT") {
		if p.tok.Kind != TokNumber {
			p.errorf("expected number after LIMIT, got %s", p.tok)
			return sel
		}
		n, err := strconv.ParseInt(p.advance().Text, 10, 64)
		if err != nil {
			p.errorf("bad LIMIT: %v", err)
			return sel
		}
		sel.Limit = n
	}
	return sel
}

func (p *Parser) parseSelectItem() SelectItem {
	if p.isPunct("*") {
		p.advance()
		return SelectItem{Star: true}
	}
	// t.* form: ident '.' '*'
	if p.tok.Kind == TokIdent &&
		p.nxt.Kind == TokPunct && p.nxt.Text == "." &&
		p.nxt2.Kind == TokPunct && p.nxt2.Text == "*" {
		qual := p.advance().Text
		p.advance() // '.'
		p.advance() // '*'
		return SelectItem{Star: true, Qualifier: qual}
	}
	item := SelectItem{Expr: p.parseExpr()}
	if p.accept("AS") {
		item.Alias = p.expectIdent()
	} else if p.tok.Kind == TokIdent {
		item.Alias = p.advance().Text
	}
	return item
}

// parseJoinChain parses "ref [INNER|CROSS] JOIN ref ON cond ..." into the
// flat table list plus the ON conditions. Outer joins are rejected with a
// pointer to the extensibility example.
func (p *Parser) parseJoinChain() ([]TableRef, []Expr) {
	refs := []TableRef{p.parseTableRef()}
	var conds []Expr
	for {
		switch {
		case p.isKeyword("JOIN") || p.isKeyword("INNER") && p.nextIsKeyword("JOIN"):
			p.accept("INNER")
			p.expect("JOIN")
			refs = append(refs, p.parseTableRef())
			p.expect("ON")
			conds = append(conds, p.parseExpr())
		case p.isKeyword("CROSS") && p.nextIsKeyword("JOIN"):
			p.advance()
			p.expect("JOIN")
			refs = append(refs, p.parseTableRef())
		case p.isKeyword("LEFT") || p.isKeyword("RIGHT") || p.isKeyword("FULL"):
			p.errorf("outer joins are not supported by the SQL front end " +
				"(an outer-join box kind can be added as an extension; see examples/extensibility)")
			return refs, conds
		default:
			return refs, conds
		}
	}
}

func (p *Parser) parseTableRef() TableRef {
	if p.acceptPunct("(") {
		q := p.parseQueryExpr()
		p.expectPunct(")")
		ref := TableRef{Subquery: q}
		p.accept("AS")
		ref.Alias = p.expectIdent()
		return ref
	}
	ref := TableRef{Table: p.expectIdent()}
	if p.accept("AS") {
		ref.Alias = p.expectIdent()
	} else if p.tok.Kind == TokIdent {
		ref.Alias = p.advance().Text
	}
	return ref
}

// Expression grammar, lowest to highest precedence:
//
//	OR → AND → NOT → comparison / IS / IN / BETWEEN / LIKE / EXISTS
//	   → additive → multiplicative → unary minus → primary
func (p *Parser) parseExpr() Expr { return p.parseOr() }

func (p *Parser) parseOr() Expr {
	left := p.parseAnd()
	for p.accept("OR") {
		right := p.parseAnd()
		left = &Bin{Op: OpOr, L: left, R: right}
	}
	return left
}

func (p *Parser) parseAnd() Expr {
	left := p.parseNot()
	for p.accept("AND") {
		right := p.parseNot()
		left = &Bin{Op: OpAnd, L: left, R: right}
	}
	return left
}

func (p *Parser) parseNot() Expr {
	if p.accept("NOT") {
		return &Unary{Op: OpNot, X: p.parseNot()}
	}
	return p.parseComparison()
}

var cmpPunct = map[string]BinKind{
	"=": OpEQ, "<>": OpNE, "<": OpLT, "<=": OpLE, ">": OpGT, ">=": OpGE,
}

func (p *Parser) parseComparison() Expr {
	left := p.parseAdditive()
	return p.parseExprSuffix(left)
}

// parseExprSuffix parses comparison/IS/IN/BETWEEN/LIKE suffixes after a
// parsed left operand. Exposed separately so the select-item fast path can
// reuse it.
func (p *Parser) parseExprSuffix(left Expr) Expr {
	for {
		switch {
		case p.tok.Kind == TokPunct && cmpPunct[p.tok.Text] != 0:
			op := cmpPunct[p.tok.Text]
			p.advance()
			// Quantified comparison?
			if p.isKeyword("ANY") || p.isKeyword("SOME") || p.isKeyword("ALL") {
				quant := Any
				if p.tok.Text == "ALL" {
					quant = All
				}
				p.advance()
				p.expectPunct("(")
				sub := p.parseQueryExpr()
				p.expectPunct(")")
				left = &QuantCmp{X: left, Op: op, Quant: quant, Sub: sub}
				continue
			}
			right := p.parseAdditive()
			left = &Bin{Op: op, L: left, R: right}
		case p.isKeyword("IS"):
			p.advance()
			not := p.accept("NOT")
			p.expect("NULL")
			left = &IsNull{X: left, Not: not}
		case p.isKeyword("NOT") && (p.nextIsKeyword("IN") || p.nextIsKeyword("BETWEEN") || p.nextIsKeyword("LIKE")):
			p.advance()
			left = p.parseInBetweenLike(left, true)
		case p.isKeyword("IN") || p.isKeyword("BETWEEN") || p.isKeyword("LIKE"):
			left = p.parseInBetweenLike(left, false)
		default:
			return left
		}
	}
}

func (p *Parser) parseInBetweenLike(left Expr, not bool) Expr {
	switch {
	case p.accept("IN"):
		p.expectPunct("(")
		if p.isKeyword("SELECT") {
			sub := p.parseQueryExpr()
			p.expectPunct(")")
			return &In{X: left, Sub: sub, Not: not}
		}
		var list []Expr
		for {
			list = append(list, p.parseExpr())
			if !p.acceptPunct(",") {
				break
			}
		}
		p.expectPunct(")")
		return &In{X: left, List: list, Not: not}
	case p.accept("BETWEEN"):
		lo := p.parseAdditive()
		p.expect("AND")
		hi := p.parseAdditive()
		return &Between{X: left, Lo: lo, Hi: hi, Not: not}
	case p.accept("LIKE"):
		if p.tok.Kind != TokString {
			p.errorf("LIKE pattern must be a string literal, got %s", p.tok)
			return left
		}
		pat := p.advance().Text
		return &Like{X: left, Pattern: pat, Not: not}
	}
	p.errorf("expected IN, BETWEEN, or LIKE, got %s", p.tok)
	return left
}

func (p *Parser) parseAdditive() Expr {
	left := p.parseMultiplicative()
	for {
		var op BinKind
		switch {
		case p.isPunct("+"):
			op = OpAdd
		case p.isPunct("-"):
			op = OpSub
		case p.isPunct("||"):
			op = OpConcat
		default:
			return left
		}
		p.advance()
		right := p.parseMultiplicative()
		left = &Bin{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseMultiplicative() Expr {
	left := p.parseUnary()
	for {
		var op BinKind
		switch {
		case p.isPunct("*"):
			op = OpMul
		case p.isPunct("/"):
			op = OpDiv
		case p.isPunct("%"):
			op = OpMod
		default:
			return left
		}
		p.advance()
		right := p.parseUnary()
		left = &Bin{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() Expr {
	if p.acceptPunct("-") {
		return &Unary{Op: OpNeg, X: p.parseUnary()}
	}
	p.acceptPunct("+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() Expr {
	switch {
	case p.tok.Kind == TokNumber:
		text := p.advance().Text
		if strings.ContainsAny(text, ".eE") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				p.errorf("bad number %q: %v", text, err)
				return &Lit{Value: datum.Null()}
			}
			return &Lit{Value: datum.Float(f)}
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			p.errorf("bad number %q: %v", text, err)
			return &Lit{Value: datum.Null()}
		}
		return &Lit{Value: datum.Int(i)}
	case p.tok.Kind == TokString:
		return &Lit{Value: datum.String(p.advance().Text)}
	case p.isPunct("?"):
		p.advance()
		p.params++
		return &Param{Ord: p.params - 1}
	case p.isKeyword("NULL"):
		p.advance()
		return &Lit{Value: datum.Null()}
	case p.isKeyword("TRUE"):
		p.advance()
		return &Lit{Value: datum.Bool(true)}
	case p.isKeyword("FALSE"):
		p.advance()
		return &Lit{Value: datum.Bool(false)}
	case p.isKeyword("CASE"):
		return p.parseCase()
	case p.isKeyword("EXISTS"):
		p.advance()
		p.expectPunct("(")
		sub := p.parseQueryExpr()
		p.expectPunct(")")
		return &Exists{Sub: sub}
	case p.isPunct("("):
		p.advance()
		if p.isKeyword("SELECT") {
			sub := p.parseQueryExpr()
			p.expectPunct(")")
			return &ScalarSub{Sub: sub}
		}
		e := p.parseExpr()
		p.expectPunct(")")
		return e
	case p.tok.Kind == TokIdent:
		name := p.advance().Text
		if p.isPunct("(") {
			return p.parseFuncCall(name)
		}
		if p.acceptPunct(".") {
			col := p.expectIdent()
			return &ColRef{Qualifier: name, Name: col}
		}
		return &ColRef{Name: name}
	default:
		p.errorf("expected an expression, got %s", p.tok)
		return &Lit{Value: datum.Null()}
	}
}

func (p *Parser) parseCase() Expr {
	p.expect("CASE")
	c := &Case{}
	if !p.isKeyword("WHEN") {
		c.Operand = p.parseExpr()
	}
	for p.accept("WHEN") {
		w := CaseWhen{When: p.parseExpr()}
		p.expect("THEN")
		w.Then = p.parseExpr()
		c.Whens = append(c.Whens, w)
	}
	if len(c.Whens) == 0 {
		p.errorf("CASE requires at least one WHEN arm")
	}
	if p.accept("ELSE") {
		c.Else = p.parseExpr()
	}
	p.expect("END")
	return c
}

func (p *Parser) parseFuncCall(name string) Expr {
	fc := &FuncCall{Name: strings.ToUpper(name)}
	p.expectPunct("(")
	if p.isPunct("*") {
		p.advance()
		fc.Star = true
		p.expectPunct(")")
		return fc
	}
	if p.accept("DISTINCT") {
		fc.Distinct = true
	} else {
		p.accept("ALL")
	}
	if !p.isPunct(")") {
		for {
			fc.Args = append(fc.Args, p.parseExpr())
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	p.expectPunct(")")
	return fc
}
