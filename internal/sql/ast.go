package sql

import (
	"starmagic/internal/datum"
)

// Statement is any top-level SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (col type, ..., PRIMARY KEY (cols)).
type CreateTable struct {
	Name       string
	Cols       []ColDef
	PrimaryKey []string
	Uniques    [][]string
}

// ColDef is one column definition.
type ColDef struct {
	Name string
	Type datum.Type
}

// CreateView is CREATE VIEW name [(cols)] AS query.
type CreateView struct {
	Name  string
	Cols  []string
	Query QueryExpr
	// SQL is the view body text, stored in the catalog for re-expansion.
	SQL string
}

// CreateIndex is CREATE INDEX name ON table (cols).
type CreateIndex struct {
	Name   string
	Table  string
	Cols   []string
	Unique bool
}

// Insert is INSERT INTO table VALUES (...), (...) or INSERT INTO table
// SELECT ... (Query set, Rows nil).
type Insert struct {
	Table string
	Rows  [][]Expr
	Query QueryExpr
}

// Delete is DELETE FROM table [WHERE pred].
type Delete struct {
	Table string
	Where Expr
}

// Update is UPDATE table SET col = expr, ... [WHERE pred].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET column = expression pair.
type Assignment struct {
	Column string
	Expr   Expr
}

// DropView is DROP VIEW name.
type DropView struct {
	Name string
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

// SelectStatement wraps a query expression used as a statement.
type SelectStatement struct {
	Query QueryExpr
}

func (*CreateTable) stmt()     {}
func (*CreateView) stmt()      {}
func (*CreateIndex) stmt()     {}
func (*Insert) stmt()          {}
func (*Delete) stmt()          {}
func (*Update) stmt()          {}
func (*DropView) stmt()        {}
func (*DropTable) stmt()       {}
func (*SelectStatement) stmt() {}

// QueryExpr is a query: a single SELECT block or a set operation over query
// expressions. It corresponds to the paper's "blob" (§2).
type QueryExpr interface{ queryExpr() }

// Select is a single SELECT block — the paper's "block" (§2). INNER JOIN
// ... ON syntax is desugared by the parser: joined tables land in From and
// the ON conditions are conjoined into Where (QGM represents all inner
// joins as quantifier sets with predicates).
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 means no limit
}

// SetOpKind is a set operation.
type SetOpKind uint8

// Set operations.
const (
	Union SetOpKind = iota
	Intersect
	Except
)

func (k SetOpKind) String() string {
	switch k {
	case Union:
		return "UNION"
	case Intersect:
		return "INTERSECT"
	}
	return "EXCEPT"
}

// SetOp is L op R, with ALL controlling bag vs set semantics.
type SetOp struct {
	Op    SetOpKind
	All   bool
	Left  QueryExpr
	Right QueryExpr
}

func (*Select) queryExpr() {}
func (*SetOp) queryExpr()  {}

// SelectItem is one element of the select list.
type SelectItem struct {
	// Star is SELECT * (Qualifier empty) or SELECT t.* (Qualifier set).
	Star      bool
	Qualifier string
	Expr      Expr
	Alias     string
}

// TableRef is an element of the FROM clause: a named table/view with an
// optional alias, or a derived table (subquery) with a mandatory alias.
type TableRef struct {
	Table    string
	Alias    string
	Subquery QueryExpr
}

// Name returns the reference's binding name (alias if present).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a scalar or predicate expression.
type Expr interface{ expr() }

// ColRef is a possibly qualified column reference.
type ColRef struct {
	Qualifier string // table alias, may be empty
	Name      string
}

// Lit is a literal value.
type Lit struct {
	Value datum.D
}

// Param is a positional placeholder (`?`). Ord is the zero-based position
// in left-to-right source order; the parser assigns it.
type Param struct {
	Ord int
}

// BinKind enumerates binary operators.
type BinKind uint8

// Binary operators, in ascending precedence groups.
const (
	OpOr BinKind = iota
	OpAnd
	OpEQ
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
)

func (k BinKind) String() string {
	switch k {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpConcat:
		return "||"
	}
	return "?"
}

// IsCmp reports whether the operator is a comparison.
func (k BinKind) IsCmp() bool { return k >= OpEQ && k <= OpGE }

// CmpOp converts a comparison BinKind to the datum operator.
func (k BinKind) CmpOp() datum.CmpOp {
	switch k {
	case OpEQ:
		return datum.EQ
	case OpNE:
		return datum.NE
	case OpLT:
		return datum.LT
	case OpLE:
		return datum.LE
	case OpGT:
		return datum.GT
	case OpGE:
		return datum.GE
	}
	panic("sql: CmpOp on non-comparison")
}

// Bin is a binary expression.
type Bin struct {
	Op   BinKind
	L, R Expr
}

// UnaryKind enumerates unary operators.
type UnaryKind uint8

// Unary operators.
const (
	OpNot UnaryKind = iota
	OpNeg
)

// Unary is NOT x or -x.
type Unary struct {
	Op UnaryKind
	X  Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// Like is x [NOT] LIKE pattern (pattern must be a literal).
type Like struct {
	X       Expr
	Pattern string
	Not     bool
}

// In is x [NOT] IN (list) or x [NOT] IN (subquery).
type In struct {
	X    Expr
	List []Expr
	Sub  QueryExpr
	Not  bool
}

// Exists is [NOT] EXISTS (subquery).
type Exists struct {
	Sub QueryExpr
	Not bool
}

// QuantKind distinguishes ANY/SOME from ALL.
type QuantKind uint8

// Quantifier kinds for quantified comparisons.
const (
	Any QuantKind = iota
	All
)

// QuantCmp is x op ANY (sub) or x op ALL (sub).
type QuantCmp struct {
	X     Expr
	Op    BinKind // a comparison operator
	Quant QuantKind
	Sub   QueryExpr
}

// ScalarSub is a scalar subquery used as an expression.
type ScalarSub struct {
	Sub QueryExpr
}

// CaseWhen is one WHEN ... THEN ... arm.
type CaseWhen struct {
	When Expr
	Then Expr
}

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END. With an operand
// (simple CASE) each WHEN is compared by equality; without (searched CASE)
// each WHEN is a predicate.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr // nil means NULL
}

// FuncCall is a function application. Aggregates are recognized by name in
// semantic analysis; Star marks COUNT(*).
type FuncCall struct {
	Name     string
	Distinct bool
	Star     bool
	Args     []Expr
}

func (*ColRef) expr()    {}
func (*Lit) expr()       {}
func (*Param) expr()     {}
func (*Bin) expr()       {}
func (*Unary) expr()     {}
func (*IsNull) expr()    {}
func (*Between) expr()   {}
func (*Like) expr()      {}
func (*In) expr()        {}
func (*Exists) expr()    {}
func (*QuantCmp) expr()  {}
func (*ScalarSub) expr() {}
func (*FuncCall) expr()  {}
func (*Case) expr()      {}
