package sql

import (
	"fmt"
	"strings"
)

// Lexer tokenizes SQL text. It is used by the Parser; tests use it directly.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a positioned lex/parse error.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Identifiers are ASCII: treating arbitrary high bytes as letters (via a
// byte-to-rune cast) would accept invalid UTF-8 as identifiers.
func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c == '$' || ('0' <= c && c <= '9')
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if keywords[strings.ToUpper(text)] {
			tok.Kind = TokKeyword
			tok.Text = strings.ToUpper(text)
		} else {
			tok.Kind = TokIdent
			tok.Text = text
		}
		return tok, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		start := l.pos
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.peekByte()
			if ch >= '0' && ch <= '9' {
				l.advance()
				continue
			}
			if ch == '.' && !seenDot {
				// Only a decimal point if followed by a digit; "1." then "." as
				// punct is nicer to reject via parser.
				seenDot = true
				l.advance()
				continue
			}
			break
		}
		// Scientific notation: digits [eE] [+-] digits.
		if l.pos < len(l.src) && (l.peekByte() == 'e' || l.peekByte() == 'E') {
			mark, markLine, markCol := l.pos, l.line, l.col
			l.advance()
			if l.pos < len(l.src) && (l.peekByte() == '+' || l.peekByte() == '-') {
				l.advance()
			}
			if l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
				for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
					l.advance()
				}
			} else {
				// Not an exponent after all ("1e" then identifier): back off.
				l.pos, l.line, l.col = mark, markLine, markCol
			}
		}
		tok.Kind = TokNumber
		tok.Text = l.src[start:l.pos]
		return tok, nil
	case c == '\'':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '\'' {
				// '' escapes a quote inside the string.
				if l.peekByte() == '\'' {
					l.advance()
					sb.WriteByte('\'')
					continue
				}
				break
			}
			sb.WriteByte(ch)
		}
		tok.Kind = TokString
		tok.Text = sb.String()
		return tok, nil
	case c == '"':
		// Double-quoted identifiers.
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != '"' {
			l.advance()
		}
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated quoted identifier")
		}
		text := l.src[start:l.pos]
		l.advance()
		tok.Kind = TokIdent
		tok.Text = text
		return tok, nil
	default:
		// Multi-byte punctuation first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=", "||":
			l.advance()
			l.advance()
			tok.Kind = TokPunct
			if two == "!=" {
				two = "<>"
			}
			tok.Text = two
			return tok, nil
		}
		switch c {
		case '=', '<', '>', '(', ')', ',', '.', '*', '+', '-', '/', '%', ';', '?':
			l.advance()
			tok.Kind = TokPunct
			tok.Text = string(c)
			return tok, nil
		}
		return Token{}, l.errf("unexpected character %q", string(c))
	}
}

// Tokenize lexes the whole input; used in tests.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
