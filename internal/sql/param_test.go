package sql

import "testing"

// TestParamParsing checks that `?` placeholders parse into Param nodes with
// left-to-right zero-based ordinals, everywhere an expression may appear.
func TestParamParsing(t *testing.T) {
	q, err := ParseQuery(`SELECT a FROM t WHERE a = ? AND b > ? OR c IN (SELECT d FROM u WHERE d < ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := QueryParams(q); got != 3 {
		t.Fatalf("QueryParams = %d, want 3", got)
	}
	sel, ok := q.(*Select)
	if !ok {
		t.Fatalf("parsed %T, want *Select", q)
	}
	// The first predicate conjunct is a = ?; its placeholder must be ordinal 0.
	var first *Param
	walkSQLExprDeep(sel.Where, func(e Expr) bool {
		if p, ok := e.(*Param); ok && first == nil {
			first = p
		}
		return true
	}, func(QueryExpr) {})
	if first == nil || first.Ord != 0 {
		t.Fatalf("first placeholder = %+v, want ordinal 0", first)
	}
}

// TestParamRoundTrip checks that formatting a parameterized query and
// re-parsing it reproduces the same placeholder count and ordinals (the
// printer emits bare `?`; ordinals are positional, so they renumber
// identically).
func TestParamRoundTrip(t *testing.T) {
	const src = `SELECT a, ? FROM t WHERE a = ? AND b BETWEEN ? AND ?`
	q1, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatQuery(q1)
	q2, err := ParseQuery(text)
	if err != nil {
		t.Fatalf("reparse %q: %v", text, err)
	}
	if FormatQuery(q2) != text {
		t.Fatalf("round-trip mismatch:\n first %s\nsecond %s", text, FormatQuery(q2))
	}
	if a, b := QueryParams(q1), QueryParams(q2); a != b || a != 4 {
		t.Fatalf("param counts %d vs %d, want 4", a, b)
	}
}

// TestCountParams covers the statement walker the engine uses to reject
// placeholders in DDL/DML.
func TestCountParams(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{`SELECT a FROM t WHERE a = ?`, 1},
		{`INSERT INTO t VALUES (?, 2)`, 1},
		{`DELETE FROM t WHERE a = ?`, 1},
		{`UPDATE t SET a = ? WHERE b = ?`, 2},
		{`CREATE VIEW v (a) AS SELECT a FROM t WHERE a > ?`, 1},
		{`SELECT a FROM t`, 0},
		{`CREATE TABLE t2 (a INT)`, 0},
	}
	for _, c := range cases {
		stmts, err := ParseAll(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got := CountParams(stmts[0]); got != c.want {
			t.Errorf("CountParams(%s) = %d, want %d", c.src, got, c.want)
		}
	}
}

// TestNormalize checks that the plan-cache key normalization collapses
// whitespace and identifier case but preserves string literals.
func TestNormalize(t *testing.T) {
	a := Normalize("SELECT  E.Name FROM   Emp E\n WHERE e.dept = ? AND e.city = 'Lyon'")
	b := Normalize("select e.name from emp e where E.DEPT = ? and E.City = 'Lyon'")
	if a != b {
		t.Fatalf("normalized forms differ:\n%s\n%s", a, b)
	}
	c := Normalize("select e.name from emp e where e.dept = ? and e.city = 'LYON'")
	if a == c {
		t.Fatal("normalization must not fold string literal case")
	}
	// Unlexable input falls back to the raw text rather than erroring.
	if got := Normalize("SELECT $$$"); got != "SELECT $$$" {
		t.Fatalf("lex-error fallback = %q", got)
	}
}

// TestNormalizeInjective checks that the rendering undoes the lexer's
// unescaping: lexically distinct queries must never normalize to the same
// plan-cache key, or one query would silently be served another's plan.
func TestNormalizeInjective(t *testing.T) {
	distinct := [][2]string{
		// Embedded quotes in string literals must be re-escaped: without it,
		// x = 'p'' AND y = ''q (one literal containing "p' AND y = 'q") keys
		// identically to the two-literal form.
		{
			`SELECT e.name FROM emp e WHERE e.name = 'p'' AND e.city = ''q'`,
			`SELECT e.name FROM emp e WHERE e.name = 'p' AND e.city = 'q'`,
		},
		// A quoted identifier containing a space must not collide with two
		// bare tokens.
		{
			`SELECT e."a b" FROM emp e`,
			`SELECT e.a b FROM emp e`,
		},
		// A string literal must not collide with an identifier of the same
		// spelling.
		{
			`SELECT 'name' FROM emp e`,
			`SELECT name FROM emp e`,
		},
		// A quoted identifier must not collide with the keyword of the same
		// spelling (keywords render bare and upper-case, identifiers quoted
		// and lower-case).
		{
			`SELECT e.name FROM emp e WHERE e."and" = 1`,
			`SELECT e.name FROM emp e WHERE e.AND = 1`,
		},
	}
	for _, pair := range distinct {
		a, b := Normalize(pair[0]), Normalize(pair[1])
		if a == b {
			t.Errorf("distinct queries share a cache key %q:\n%s\n%s", a, pair[0], pair[1])
		}
	}
	// Quoted and bare spellings of the same identifier still unify.
	if a, b := Normalize(`SELECT e."name" FROM emp e`), Normalize(`SELECT e.Name FROM emp e`); a != b {
		t.Errorf("equivalent identifier spellings key differently:\n%s\n%s", a, b)
	}
}
