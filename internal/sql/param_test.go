package sql

import "testing"

// TestParamParsing checks that `?` placeholders parse into Param nodes with
// left-to-right zero-based ordinals, everywhere an expression may appear.
func TestParamParsing(t *testing.T) {
	q, err := ParseQuery(`SELECT a FROM t WHERE a = ? AND b > ? OR c IN (SELECT d FROM u WHERE d < ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := QueryParams(q); got != 3 {
		t.Fatalf("QueryParams = %d, want 3", got)
	}
	sel, ok := q.(*Select)
	if !ok {
		t.Fatalf("parsed %T, want *Select", q)
	}
	// The first predicate conjunct is a = ?; its placeholder must be ordinal 0.
	var first *Param
	walkSQLExprDeep(sel.Where, func(e Expr) bool {
		if p, ok := e.(*Param); ok && first == nil {
			first = p
		}
		return true
	}, func(QueryExpr) {})
	if first == nil || first.Ord != 0 {
		t.Fatalf("first placeholder = %+v, want ordinal 0", first)
	}
}

// TestParamRoundTrip checks that formatting a parameterized query and
// re-parsing it reproduces the same placeholder count and ordinals (the
// printer emits bare `?`; ordinals are positional, so they renumber
// identically).
func TestParamRoundTrip(t *testing.T) {
	const src = `SELECT a, ? FROM t WHERE a = ? AND b BETWEEN ? AND ?`
	q1, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatQuery(q1)
	q2, err := ParseQuery(text)
	if err != nil {
		t.Fatalf("reparse %q: %v", text, err)
	}
	if FormatQuery(q2) != text {
		t.Fatalf("round-trip mismatch:\n first %s\nsecond %s", text, FormatQuery(q2))
	}
	if a, b := QueryParams(q1), QueryParams(q2); a != b || a != 4 {
		t.Fatalf("param counts %d vs %d, want 4", a, b)
	}
}

// TestCountParams covers the statement walker the engine uses to reject
// placeholders in DDL/DML.
func TestCountParams(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{`SELECT a FROM t WHERE a = ?`, 1},
		{`INSERT INTO t VALUES (?, 2)`, 1},
		{`DELETE FROM t WHERE a = ?`, 1},
		{`UPDATE t SET a = ? WHERE b = ?`, 2},
		{`CREATE VIEW v (a) AS SELECT a FROM t WHERE a > ?`, 1},
		{`SELECT a FROM t`, 0},
		{`CREATE TABLE t2 (a INT)`, 0},
	}
	for _, c := range cases {
		stmts, err := ParseAll(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got := CountParams(stmts[0]); got != c.want {
			t.Errorf("CountParams(%s) = %d, want %d", c.src, got, c.want)
		}
	}
}

// TestNormalize checks that the plan-cache key normalization collapses
// whitespace and identifier case but preserves string literals.
func TestNormalize(t *testing.T) {
	a := Normalize("SELECT  E.Name FROM   Emp E\n WHERE e.dept = ? AND e.city = 'Lyon'")
	b := Normalize("select e.name from emp e where E.DEPT = ? and E.City = 'Lyon'")
	if a != b {
		t.Fatalf("normalized forms differ:\n%s\n%s", a, b)
	}
	c := Normalize("select e.name from emp e where e.dept = ? and e.city = 'LYON'")
	if a == c {
		t.Fatal("normalization must not fold string literal case")
	}
	// Unlexable input falls back to the raw text rather than erroring.
	if got := Normalize("SELECT $$$"); got != "SELECT $$$" {
		t.Fatalf("lex-error fallback = %q", got)
	}
}
