package sql

import (
	"fmt"
	"strconv"
	"strings"

	"starmagic/internal/datum"
)

// ident renders an identifier, double-quoting it when it is not a plain
// ASCII identifier or collides with a reserved word — so everything the
// parser accepted can be printed back in a form it accepts again.
func ident(name string) string {
	plain := name != ""
	for i := 0; i < len(name); i++ {
		c := name[i]
		letter := c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
		ok := letter || (i > 0 && (c == '$' || ('0' <= c && c <= '9')))
		if !ok {
			plain = false
			break
		}
	}
	if plain && keywords[strings.ToUpper(name)] {
		plain = false
	}
	if plain {
		return name
	}
	return "\"" + name + "\""
}

// FormatQuery renders a query expression back to SQL text. The output
// re-parses to a structurally identical tree (round-trip tested).
func FormatQuery(q QueryExpr) string {
	var sb strings.Builder
	formatQuery(&sb, q, false)
	return sb.String()
}

// FormatStatement renders a statement back to SQL text.
func FormatStatement(s Statement) string {
	var sb strings.Builder
	switch st := s.(type) {
	case *SelectStatement:
		formatQuery(&sb, st.Query, false)
	case *CreateTable:
		sb.WriteString("CREATE TABLE ")
		sb.WriteString(ident(st.Name))
		sb.WriteString(" (")
		for i, c := range st.Cols {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(ident(c.Name))
			sb.WriteByte(' ')
			sb.WriteString(c.Type.String())
		}
		if len(st.PrimaryKey) > 0 {
			sb.WriteString(", PRIMARY KEY (")
			sb.WriteString(identJoin(st.PrimaryKey))
			sb.WriteString(")")
		}
		for _, u := range st.Uniques {
			sb.WriteString(", UNIQUE (")
			sb.WriteString(identJoin(u))
			sb.WriteString(")")
		}
		sb.WriteString(")")
	case *CreateView:
		sb.WriteString("CREATE VIEW ")
		sb.WriteString(ident(st.Name))
		if len(st.Cols) > 0 {
			sb.WriteString(" (")
			sb.WriteString(identJoin(st.Cols))
			sb.WriteString(")")
		}
		sb.WriteString(" AS ")
		formatQuery(&sb, st.Query, false)
	case *CreateIndex:
		sb.WriteString("CREATE ")
		if st.Unique {
			sb.WriteString("UNIQUE ")
		}
		sb.WriteString("INDEX ")
		sb.WriteString(ident(st.Name))
		sb.WriteString(" ON ")
		sb.WriteString(ident(st.Table))
		sb.WriteString(" (")
		sb.WriteString(identJoin(st.Cols))
		sb.WriteString(")")
	case *Insert:
		sb.WriteString("INSERT INTO ")
		sb.WriteString(ident(st.Table))
		if st.Query != nil {
			sb.WriteString(" ")
			formatQuery(&sb, st.Query, false)
			break
		}
		sb.WriteString(" VALUES ")
		for i, row := range st.Rows {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("(")
			for j, e := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(FormatExpr(e))
			}
			sb.WriteString(")")
		}
	case *Delete:
		sb.WriteString("DELETE FROM ")
		sb.WriteString(ident(st.Table))
		if st.Where != nil {
			sb.WriteString(" WHERE ")
			sb.WriteString(FormatExpr(st.Where))
		}
	case *Update:
		sb.WriteString("UPDATE ")
		sb.WriteString(ident(st.Table))
		sb.WriteString(" SET ")
		for i, a := range st.Set {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(ident(a.Column))
			sb.WriteString(" = ")
			sb.WriteString(FormatExpr(a.Expr))
		}
		if st.Where != nil {
			sb.WriteString(" WHERE ")
			sb.WriteString(FormatExpr(st.Where))
		}
	case *DropView:
		sb.WriteString("DROP VIEW ")
		sb.WriteString(ident(st.Name))
	default:
		fmt.Fprintf(&sb, "/* unknown statement %T */", s)
	}
	return sb.String()
}

func formatQuery(sb *strings.Builder, q QueryExpr, paren bool) {
	switch qq := q.(type) {
	case *Select:
		if paren {
			sb.WriteString("(")
		}
		formatSelect(sb, qq)
		if paren {
			sb.WriteString(")")
		}
	case *SetOp:
		if paren {
			sb.WriteString("(")
		}
		formatQuery(sb, qq.Left, needsParen(qq.Left, qq.Op))
		sb.WriteByte(' ')
		sb.WriteString(qq.Op.String())
		if qq.All {
			sb.WriteString(" ALL")
		}
		sb.WriteByte(' ')
		formatQuery(sb, qq.Right, true)
		if paren {
			sb.WriteString(")")
		}
	}
}

// needsParen decides whether the left side of a set op must be
// parenthesized to preserve structure.
func needsParen(q QueryExpr, parent SetOpKind) bool {
	s, ok := q.(*SetOp)
	if !ok {
		return false
	}
	// INTERSECT binds tighter than UNION/EXCEPT; re-parsing "a UNION b
	// INTERSECT c" would group the INTERSECT first.
	return parent == Intersect && s.Op != Intersect
}

func formatSelect(sb *strings.Builder, s *Select) {
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star && it.Qualifier == "":
			sb.WriteString("*")
		case it.Star:
			sb.WriteString(ident(it.Qualifier))
			sb.WriteString(".*")
		default:
			sb.WriteString(FormatExpr(it.Expr))
			if it.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(ident(it.Alias))
			}
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			if f.Subquery != nil {
				formatQuery(sb, f.Subquery, true)
				sb.WriteString(" AS ")
				sb.WriteString(ident(f.Alias))
			} else {
				sb.WriteString(ident(f.Table))
				if f.Alias != "" {
					sb.WriteString(" ")
					sb.WriteString(ident(f.Alias))
				}
			}
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(FormatExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(FormatExpr(e))
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(FormatExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(FormatExpr(o.Expr))
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.FormatInt(s.Limit, 10))
	}
}

// FormatExpr renders an expression to SQL text. Parenthesization is
// conservative: nested binary expressions are parenthesized, which is always
// re-parseable.
func FormatExpr(e Expr) string {
	var sb strings.Builder
	formatExpr(&sb, e, false)
	return sb.String()
}

func formatExpr(sb *strings.Builder, e Expr, nested bool) {
	switch x := e.(type) {
	case *ColRef:
		if x.Qualifier != "" {
			sb.WriteString(ident(x.Qualifier))
			sb.WriteByte('.')
		}
		sb.WriteString(ident(x.Name))
	case *Lit:
		formatLit(sb, x.Value)
	case *Param:
		// Ordinals are positional and re-assigned on parse, so the bare
		// placeholder round-trips.
		sb.WriteByte('?')
	case *Bin:
		if nested {
			sb.WriteString("(")
		}
		formatExpr(sb, x.L, true)
		sb.WriteByte(' ')
		sb.WriteString(x.Op.String())
		sb.WriteByte(' ')
		formatExpr(sb, x.R, true)
		if nested {
			sb.WriteString(")")
		}
	case *Unary:
		if x.Op == OpNot {
			sb.WriteString("NOT (")
			formatExpr(sb, x.X, false)
			sb.WriteString(")")
		} else {
			// Parenthesize so nested negations never print as "--", which
			// would lex as a line comment.
			sb.WriteString("-(")
			formatExpr(sb, x.X, false)
			sb.WriteString(")")
		}
	case *IsNull:
		formatExpr(sb, x.X, true)
		if x.Not {
			sb.WriteString(" IS NOT NULL")
		} else {
			sb.WriteString(" IS NULL")
		}
	case *Between:
		formatExpr(sb, x.X, true)
		if x.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		formatExpr(sb, x.Lo, true)
		sb.WriteString(" AND ")
		formatExpr(sb, x.Hi, true)
	case *Like:
		formatExpr(sb, x.X, true)
		if x.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" LIKE ")
		formatLit(sb, datum.String(x.Pattern))
	case *In:
		formatExpr(sb, x.X, true)
		if x.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		if x.Sub != nil {
			formatQuery(sb, x.Sub, false)
		} else {
			for i, le := range x.List {
				if i > 0 {
					sb.WriteString(", ")
				}
				formatExpr(sb, le, false)
			}
		}
		sb.WriteString(")")
	case *Exists:
		if x.Not {
			sb.WriteString("NOT ")
		}
		sb.WriteString("EXISTS (")
		formatQuery(sb, x.Sub, false)
		sb.WriteString(")")
	case *QuantCmp:
		formatExpr(sb, x.X, true)
		sb.WriteByte(' ')
		sb.WriteString(x.Op.String())
		if x.Quant == Any {
			sb.WriteString(" ANY (")
		} else {
			sb.WriteString(" ALL (")
		}
		formatQuery(sb, x.Sub, false)
		sb.WriteString(")")
	case *ScalarSub:
		sb.WriteString("(")
		formatQuery(sb, x.Sub, false)
		sb.WriteString(")")
	case *Case:
		sb.WriteString("CASE")
		if x.Operand != nil {
			sb.WriteByte(' ')
			formatExpr(sb, x.Operand, true)
		}
		for _, w := range x.Whens {
			sb.WriteString(" WHEN ")
			formatExpr(sb, w.When, false)
			sb.WriteString(" THEN ")
			formatExpr(sb, w.Then, false)
		}
		if x.Else != nil {
			sb.WriteString(" ELSE ")
			formatExpr(sb, x.Else, false)
		}
		sb.WriteString(" END")
	case *FuncCall:
		sb.WriteString(x.Name)
		sb.WriteString("(")
		if x.Star {
			sb.WriteString("*")
		} else {
			if x.Distinct {
				sb.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				formatExpr(sb, a, false)
			}
		}
		sb.WriteString(")")
	default:
		fmt.Fprintf(sb, "/* unknown expr %T */", e)
	}
}

func identJoin(names []string) string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = ident(n)
	}
	return strings.Join(out, ", ")
}

func formatLit(sb *strings.Builder, d datum.D) {
	if d.IsNull() {
		sb.WriteString("NULL")
		return
	}
	if d.T == datum.TString {
		sb.WriteString("'")
		sb.WriteString(strings.ReplaceAll(d.S, "'", "''"))
		sb.WriteString("'")
		return
	}
	sb.WriteString(d.Format())
}
