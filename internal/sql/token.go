// Package sql implements the SQL front end: lexer, abstract syntax tree, and
// recursive-descent parser for the SQL dialect the paper exercises —
// SELECT/FROM/WHERE/GROUP BY/HAVING/ORDER BY blocks, CREATE TABLE/VIEW/INDEX,
// INSERT, UNION/INTERSECT/EXCEPT, nested and correlated subqueries
// (EXISTS, IN, ANY/ALL, scalar), aggregates with DISTINCT, and NULLs.
package sql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokPunct
)

// Token is one lexical token with its source position (1-based line/col).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords is the reserved-word set. Identifiers matching these (case
// insensitive) lex as TokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true,
	"AS": true, "ON": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "EXISTS": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "DISTINCT": true, "ALL": true,
	"ANY": true, "SOME": true, "UNION": true, "INTERSECT": true, "EXCEPT": true,
	"CREATE": true, "TABLE": true, "VIEW": true, "INDEX": true, "UNIQUE": true,
	"PRIMARY": true, "KEY": true, "INSERT": true, "INTO": true, "VALUES": true,
	"DROP": true, "LIMIT": true, "DELETE": true, "UPDATE": true, "SET": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"JOIN": true, "INNER": true, "CROSS": true, "LEFT": true, "RIGHT": true, "FULL": true, "OUTER": true,
	"GROUPBY": true, // the paper's spelling; accepted as GROUP BY
}
