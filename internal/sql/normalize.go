package sql

import "strings"

// Normalize renders src as a canonical token string for plan-cache keys:
// keywords are already upper-cased by the lexer, identifiers fold to lower
// case (name resolution is case-insensitive throughout the engine),
// whitespace and comments collapse to single separators. The rendering must
// be injective — two queries that lex differently must never share a key —
// so the lexer's unescaping is undone when tokens are rendered: string
// literals re-escape embedded quotes (a doubled ' inside '...'), and identifiers are
// always emitted double-quoted with embedded double quotes doubled, so
// "a b" cannot collide with two bare tokens and 'foo' never collides with
// the identifier foo. Queries differing only in formatting or case map to
// the same key. On a lex error the raw text is returned — it simply keys
// its own slot.
func Normalize(src string) string {
	toks, err := Tokenize(src)
	if err != nil {
		return src
	}
	var sb strings.Builder
	sb.Grow(len(src))
	for i, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch t.Kind {
		case TokIdent:
			sb.WriteByte('"')
			sb.WriteString(strings.ReplaceAll(strings.ToLower(t.Text), `"`, `""`))
			sb.WriteByte('"')
		case TokString:
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
			sb.WriteByte('\'')
		default:
			sb.WriteString(t.Text)
		}
	}
	return sb.String()
}
