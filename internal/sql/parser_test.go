package sql

import (
	"reflect"
	"strings"
	"testing"

	"starmagic/internal/datum"
)

func mustParseQuery(t *testing.T, src string) QueryExpr {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustParseQuery(t, "SELECT d.deptname, s.workdept FROM department d, avgMgrSal s WHERE d.deptno = s.workdept AND d.deptname = 'Planning'")
	sel, ok := q.(*Select)
	if !ok {
		t.Fatalf("got %T", q)
	}
	if len(sel.Items) != 2 || len(sel.From) != 2 {
		t.Fatalf("items=%d from=%d", len(sel.Items), len(sel.From))
	}
	if sel.From[0].Table != "department" || sel.From[0].Alias != "d" {
		t.Errorf("from[0] = %+v", sel.From[0])
	}
	and, ok := sel.Where.(*Bin)
	if !ok || and.Op != OpAnd {
		t.Fatalf("where = %T", sel.Where)
	}
}

func TestParsePaperQueryD(t *testing.T) {
	// The paper's query D, statements D0-D2, including its GROUPBY spelling.
	script := `
	CREATE VIEW mgrSal(empno, empname, workdept, salary) AS
	  SELECT e.empno, e.empname, e.workdept, e.salary
	  FROM employee e, department d
	  WHERE e.empno = d.mgrno;
	CREATE VIEW avgMgrSal(workdept, avgsalary) AS
	  SELECT workdept, AVG(salary) FROM mgrSal GROUPBY workdept;
	SELECT d.deptname, s.workdept, s.avgsalary
	FROM department d, avgMgrSal s
	WHERE d.deptno = s.workdept AND d.deptname = 'Planning';`
	stmts, err := ParseAll(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	cv, ok := stmts[1].(*CreateView)
	if !ok {
		t.Fatalf("stmt 1 is %T", stmts[1])
	}
	sel := cv.Query.(*Select)
	if len(sel.GroupBy) != 1 {
		t.Errorf("GROUPBY not parsed: %+v", sel)
	}
	if !reflect.DeepEqual(cv.Cols, []string{"workdept", "avgsalary"}) {
		t.Errorf("view cols = %v", cv.Cols)
	}
	fc, ok := sel.Items[1].Expr.(*FuncCall)
	if !ok || fc.Name != "AVG" {
		t.Errorf("item 1 = %#v", sel.Items[1].Expr)
	}
}

func TestParseGroupByTwoWords(t *testing.T) {
	q := mustParseQuery(t, "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1")
	sel := q.(*Select)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Errorf("sel = %+v", sel)
	}
}

func TestParseDistinctAndStar(t *testing.T) {
	q := mustParseQuery(t, "SELECT DISTINCT * FROM t")
	sel := q.(*Select)
	if !sel.Distinct || !sel.Items[0].Star {
		t.Errorf("sel = %+v", sel)
	}
	q = mustParseQuery(t, "SELECT t.*, u.a FROM t, u")
	sel = q.(*Select)
	if !sel.Items[0].Star || sel.Items[0].Qualifier != "t" {
		t.Errorf("qualified star: %+v", sel.Items[0])
	}
	cr := sel.Items[1].Expr.(*ColRef)
	if cr.Qualifier != "u" || cr.Name != "a" {
		t.Errorf("colref: %+v", cr)
	}
}

func TestQualifiedColumnArithmetic(t *testing.T) {
	q := mustParseQuery(t, "SELECT e.salary * 2 AS double_pay FROM employee e")
	sel := q.(*Select)
	b, ok := sel.Items[0].Expr.(*Bin)
	if !ok || b.Op != OpMul {
		t.Fatalf("expr = %#v", sel.Items[0].Expr)
	}
	if sel.Items[0].Alias != "double_pay" {
		t.Errorf("alias = %q", sel.Items[0].Alias)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	q := mustParseQuery(t, "SELECT a + b * c FROM t WHERE x = 1 OR y = 2 AND z = 3")
	sel := q.(*Select)
	add := sel.Items[0].Expr.(*Bin)
	if add.Op != OpAdd {
		t.Fatalf("top op = %v", add.Op)
	}
	if mul := add.R.(*Bin); mul.Op != OpMul {
		t.Error("* should bind tighter than +")
	}
	or := sel.Where.(*Bin)
	if or.Op != OpOr {
		t.Fatalf("where top = %v", or.Op)
	}
	if and := or.R.(*Bin); and.Op != OpAnd {
		t.Error("AND should bind tighter than OR")
	}
}

func TestNotPrecedence(t *testing.T) {
	q := mustParseQuery(t, "SELECT 1 FROM t WHERE NOT a = 1 AND b = 2")
	sel := q.(*Select)
	and := sel.Where.(*Bin)
	if and.Op != OpAnd {
		t.Fatalf("top = %v", and.Op)
	}
	if _, ok := and.L.(*Unary); !ok {
		t.Error("NOT should bind tighter than AND")
	}
}

func TestParseSubqueries(t *testing.T) {
	q := mustParseQuery(t, `SELECT e.empno FROM employee e
		WHERE EXISTS (SELECT 1 FROM dept d WHERE d.mgrno = e.empno)
		AND e.workdept IN (SELECT deptno FROM dept WHERE deptname = 'P')
		AND e.salary > (SELECT AVG(salary) FROM employee)`)
	sel := q.(*Select)
	var foundExists, foundIn, foundScalar bool
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Bin:
			walk(x.L)
			walk(x.R)
		case *Exists:
			foundExists = true
		case *In:
			foundIn = x.Sub != nil
		case *ScalarSub:
			foundScalar = true
		}
	}
	walk(sel.Where)
	if !foundExists || !foundIn || !foundScalar {
		t.Errorf("exists=%v in=%v scalar=%v", foundExists, foundIn, foundScalar)
	}
}

func TestParseNotForms(t *testing.T) {
	q := mustParseQuery(t, `SELECT 1 FROM t WHERE a NOT IN (1, 2) AND b NOT BETWEEN 1 AND 2 AND c NOT LIKE 'x%' AND d IS NOT NULL AND NOT EXISTS (SELECT 1 FROM u)`)
	sel := q.(*Select)
	var conjuncts []Expr
	var flatten func(e Expr)
	flatten = func(e Expr) {
		if b, ok := e.(*Bin); ok && b.Op == OpAnd {
			flatten(b.L)
			flatten(b.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	flatten(sel.Where)
	if len(conjuncts) != 5 {
		t.Fatalf("got %d conjuncts", len(conjuncts))
	}
	if in := conjuncts[0].(*In); !in.Not || len(in.List) != 2 {
		t.Errorf("conjunct 0: %#v", conjuncts[0])
	}
	if bt := conjuncts[1].(*Between); !bt.Not {
		t.Errorf("conjunct 1: %#v", conjuncts[1])
	}
	if lk := conjuncts[2].(*Like); !lk.Not || lk.Pattern != "x%" {
		t.Errorf("conjunct 2: %#v", conjuncts[2])
	}
	if isn := conjuncts[3].(*IsNull); !isn.Not {
		t.Errorf("conjunct 3: %#v", conjuncts[3])
	}
	un := conjuncts[4].(*Unary)
	if _, ok := un.X.(*Exists); un.Op != OpNot || !ok {
		t.Errorf("conjunct 4: %#v", conjuncts[4])
	}
}

func TestParseQuantified(t *testing.T) {
	q := mustParseQuery(t, "SELECT 1 FROM t WHERE a > ALL (SELECT b FROM u) AND c = ANY (SELECT d FROM v)")
	sel := q.(*Select)
	and := sel.Where.(*Bin)
	all := and.L.(*QuantCmp)
	if all.Quant != All || all.Op != OpGT {
		t.Errorf("ALL: %#v", all)
	}
	any := and.R.(*QuantCmp)
	if any.Quant != Any || any.Op != OpEQ {
		t.Errorf("ANY: %#v", any)
	}
}

func TestParseSetOps(t *testing.T) {
	q := mustParseQuery(t, "SELECT a FROM t UNION SELECT b FROM u INTERSECT SELECT c FROM v EXCEPT ALL SELECT d FROM w")
	// EXCEPT/UNION left-assoc same level, INTERSECT tighter:
	// ((t UNION (u INTERSECT v)) EXCEPT ALL w)
	top := q.(*SetOp)
	if top.Op != Except || !top.All {
		t.Fatalf("top = %v all=%v", top.Op, top.All)
	}
	un := top.Left.(*SetOp)
	if un.Op != Union || un.All {
		t.Fatalf("left = %v", un.Op)
	}
	in := un.Right.(*SetOp)
	if in.Op != Intersect {
		t.Fatalf("union right = %v", in.Op)
	}
}

func TestParseParenthesizedQuery(t *testing.T) {
	q := mustParseQuery(t, "(SELECT a FROM t UNION SELECT b FROM u) INTERSECT SELECT c FROM v")
	top := q.(*SetOp)
	if top.Op != Intersect {
		t.Fatalf("top = %v", top.Op)
	}
	if l := top.Left.(*SetOp); l.Op != Union {
		t.Fatalf("left = %v", l.Op)
	}
}

func TestParseDerivedTable(t *testing.T) {
	q := mustParseQuery(t, "SELECT x.a FROM (SELECT a FROM t) AS x")
	sel := q.(*Select)
	if sel.From[0].Subquery == nil || sel.From[0].Alias != "x" {
		t.Errorf("from = %+v", sel.From[0])
	}
}

func TestParseOrderByLimit(t *testing.T) {
	q := mustParseQuery(t, "SELECT a FROM t ORDER BY a DESC, b LIMIT 10")
	sel := q.(*Select)
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse(`CREATE TABLE employee (
		empno INT, empname VARCHAR(30), workdept INT, salary FLOAT,
		PRIMARY KEY (empno), UNIQUE (empname))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if len(ct.Cols) != 4 {
		t.Fatalf("cols = %d", len(ct.Cols))
	}
	if ct.Cols[1].Type != datum.TString || ct.Cols[3].Type != datum.TFloat {
		t.Errorf("types = %v %v", ct.Cols[1].Type, ct.Cols[3].Type)
	}
	if !reflect.DeepEqual(ct.PrimaryKey, []string{"empno"}) {
		t.Errorf("pk = %v", ct.PrimaryKey)
	}
	if len(ct.Uniques) != 1 || ct.Uniques[0][0] != "empname" {
		t.Errorf("uniques = %v", ct.Uniques)
	}
}

func TestParseCreateIndex(t *testing.T) {
	st, err := Parse("CREATE UNIQUE INDEX idx ON t (a, b)")
	if err != nil {
		t.Fatal(err)
	}
	ci := st.(*CreateIndex)
	if !ci.Unique || ci.Table != "t" || len(ci.Cols) != 2 {
		t.Errorf("ci = %+v", ci)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', 3.5)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("rows = %v", ins.Rows)
	}
	if lit := ins.Rows[0][2].(*Lit); !lit.Value.IsNull() {
		t.Error("NULL literal wrong")
	}
	if lit := ins.Rows[1][2].(*Lit); lit.Value.T != datum.TFloat {
		t.Error("float literal wrong")
	}
}

func TestParseInsertNegative(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES (-5)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	u := ins.Rows[0][0].(*Unary)
	if u.Op != OpNeg {
		t.Errorf("expr = %#v", ins.Rows[0][0])
	}
}

func TestParseDropView(t *testing.T) {
	st, err := Parse("DROP VIEW v")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DropView).Name != "v" {
		t.Error("name wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"CREATE TABLE t (a BOGUSTYPE)",
		"CREATE SOMETHING x",
		"SELECT a FROM t GROUP a",
		"INSERT t VALUES (1)",
		"SELECT a FROM t; garbage",
		"SELECT a LIKE b FROM t",
		"SELECT 1 LIMIT x",
		"CREATE UNIQUE TABLE t (a INT)",
	}
	for _, src := range bad {
		if _, err := ParseAll(src); err == nil {
			t.Errorf("parse %q succeeded; want error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t WHERE ???")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q lacks position", err)
	}
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := ParseAll("SELECT 1; SELECT 2;; SELECT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("got %d statements", len(stmts))
	}
}

// Round-trip: parse → format → parse must reach a fixed point that is
// structurally identical.
func TestFormatRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT d.deptname, s.workdept, s.avgsalary FROM department d, avgMgrSal s WHERE (d.deptno = s.workdept) AND (d.deptname = 'Planning')",
		"SELECT workdept, AVG(salary) FROM mgrSal GROUP BY workdept",
		"SELECT DISTINCT deptno FROM department WHERE deptname = 'Planning'",
		"SELECT a FROM t UNION ALL SELECT b FROM u",
		"SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE u.z = t.w)",
		"SELECT a FROM t WHERE NOT (x = 1)",
		"SELECT a FROM t WHERE x BETWEEN 1 AND 10 ORDER BY a DESC LIMIT 5",
		"SELECT COUNT(*), COUNT(DISTINCT b) FROM t GROUP BY c HAVING COUNT(*) > 2",
		"SELECT a FROM (SELECT a FROM t) AS x WHERE EXISTS (SELECT 1 FROM u)",
		"SELECT a FROM t WHERE s > ALL (SELECT v FROM u)",
		"SELECT t.* FROM t WHERE a IS NOT NULL",
		"SELECT a FROM t WHERE (a UNION-safe) IS NULL", // replaced below
	}
	queries = queries[:len(queries)-1]
	for _, src := range queries {
		q1, err := ParseQuery(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		text1 := FormatQuery(q1)
		q2, err := ParseQuery(text1)
		if err != nil {
			t.Errorf("re-parse %q: %v", text1, err)
			continue
		}
		text2 := FormatQuery(q2)
		if text1 != text2 {
			t.Errorf("round trip unstable:\n  %s\n  %s", text1, text2)
		}
	}
}

func TestFormatStatementRoundTrip(t *testing.T) {
	stmts := []string{
		"CREATE TABLE t (a INT, b VARCHAR, PRIMARY KEY (a))",
		"CREATE VIEW v (x) AS SELECT a FROM t",
		"CREATE UNIQUE INDEX i ON t (a)",
		"INSERT INTO t VALUES (1, 'x''y')",
		"DROP VIEW v",
	}
	for _, src := range stmts {
		s1, err := Parse(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		text1 := FormatStatement(s1)
		s2, err := Parse(text1)
		if err != nil {
			t.Errorf("re-parse %q: %v", text1, err)
			continue
		}
		if text2 := FormatStatement(s2); text1 != text2 {
			t.Errorf("round trip unstable:\n  %s\n  %s", text1, text2)
		}
	}
}

func TestSetOpFormatPreservesGrouping(t *testing.T) {
	src := "(SELECT a FROM t UNION SELECT b FROM u) INTERSECT SELECT c FROM v"
	q1 := mustParseQuery(t, src)
	q2 := mustParseQuery(t, FormatQuery(q1))
	if top, ok := q2.(*SetOp); !ok || top.Op != Intersect {
		t.Fatalf("regrouped: %s", FormatQuery(q1))
	}
}

func TestParseCase(t *testing.T) {
	q := mustParseQuery(t, `SELECT CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END FROM t`)
	sel := q.(*Select)
	c, ok := sel.Items[0].Expr.(*Case)
	if !ok {
		t.Fatalf("expr = %#v", sel.Items[0].Expr)
	}
	if c.Operand != nil || len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case = %+v", c)
	}
	// Simple CASE with operand.
	q = mustParseQuery(t, "SELECT CASE a WHEN 1 THEN 'x' END FROM t")
	c = q.(*Select).Items[0].Expr.(*Case)
	if c.Operand == nil || len(c.Whens) != 1 || c.Else != nil {
		t.Errorf("simple case = %+v", c)
	}
}

func TestParseCaseErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT CASE END FROM t",
		"SELECT CASE WHEN a THEN FROM t",
		"SELECT CASE WHEN a THEN 1 FROM t",
	} {
		if _, err := ParseAll(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestCaseRoundTrip(t *testing.T) {
	for _, src := range []string{
		"SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
		"SELECT CASE a WHEN 1 THEN 2 WHEN 3 THEN 4 END FROM t",
		"SELECT COALESCE(a, b, 0), NULLIF(a, 1) FROM t",
	} {
		q1, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		text := FormatQuery(q1)
		q2, err := ParseQuery(text)
		if err != nil {
			t.Fatalf("re-parse %q: %v", text, err)
		}
		if FormatQuery(q2) != text {
			t.Errorf("unstable: %q vs %q", text, FormatQuery(q2))
		}
	}
}

func TestParseInnerJoin(t *testing.T) {
	q := mustParseQuery(t, `SELECT e.empname FROM employee e
		JOIN department d ON e.workdept = d.deptno
		INNER JOIN employee m ON d.mgrno = m.empno
		WHERE d.deptname = 'Planning'`)
	sel := q.(*Select)
	if len(sel.From) != 3 {
		t.Fatalf("from = %d", len(sel.From))
	}
	// WHERE must hold the original predicate AND both ON conditions.
	var conjuncts []Expr
	var flatten func(e Expr)
	flatten = func(e Expr) {
		if b, ok := e.(*Bin); ok && b.Op == OpAnd {
			flatten(b.L)
			flatten(b.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	flatten(sel.Where)
	if len(conjuncts) != 3 {
		t.Errorf("conjuncts = %d; want 3", len(conjuncts))
	}
}

func TestParseCrossJoin(t *testing.T) {
	q := mustParseQuery(t, "SELECT 1 FROM a CROSS JOIN b")
	sel := q.(*Select)
	if len(sel.From) != 2 || sel.Where != nil {
		t.Errorf("sel = %+v", sel)
	}
}

func TestParseOuterJoinRejected(t *testing.T) {
	for _, src := range []string{
		"SELECT 1 FROM a LEFT JOIN b ON a.x = b.x",
		"SELECT 1 FROM a RIGHT OUTER JOIN b ON a.x = b.x",
		"SELECT 1 FROM a FULL JOIN b ON a.x = b.x",
	} {
		if _, err := ParseAll(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestParseJoinMixedWithComma(t *testing.T) {
	q := mustParseQuery(t, "SELECT 1 FROM a, b JOIN c ON b.x = c.x")
	sel := q.(*Select)
	if len(sel.From) != 3 || sel.Where == nil {
		t.Errorf("sel = %+v", sel)
	}
}
