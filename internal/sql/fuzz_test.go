package sql

import "testing"

// FuzzParse asserts the parser never panics and that anything it accepts
// round-trips through the printer into something it accepts again.
// Run with: go test -fuzz FuzzParse ./internal/sql
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT a, b FROM t WHERE a = 1 AND b < 2 ORDER BY a DESC LIMIT 3",
		"SELECT DISTINCT t.* FROM t, u WHERE t.a = u.b OR u.c IS NOT NULL",
		"SELECT COUNT(*), AVG(x) FROM t GROUP BY y HAVING COUNT(*) > 1",
		"CREATE TABLE t (a INT, b VARCHAR(3), PRIMARY KEY (a))",
		"CREATE VIEW v (x) AS SELECT a FROM t UNION ALL SELECT b FROM u",
		"INSERT INTO t VALUES (1, 'a''b'), (-2, NULL)",
		"SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t",
		"SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE u.z = t.w)",
		"SELECT a FROM t WHERE b BETWEEN 1 AND 2 AND c NOT LIKE 'x%'",
		"UPDATE t SET a = a + 1 WHERE b IS NULL",
		"DELETE FROM t WHERE a > ALL (SELECT b FROM u)",
		"SELECT /* comment */ a -- trailing\nFROM t;",
		"(SELECT a FROM t) INTERSECT SELECT b FROM u",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseAll(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, st := range stmts {
			text := FormatStatement(st)
			if _, err := ParseAll(text); err != nil {
				t.Fatalf("printer output rejected: %q -> %q: %v", src, text, err)
			}
		}
	})
}

// FuzzTokenize asserts the lexer never panics and always terminates.
func FuzzTokenize(f *testing.F) {
	for _, s := range []string{"SELECT 'a''b' <= 1.5 -- c", "/*", "\"id", "'"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("tokenize %q: missing EOF", src)
		}
	})
}
