// Package testutil provides the shared test fixture: the paper's
// employee/department schema (Example 1.1) with its mgrSal/avgMgrSal views,
// loaded at a configurable scale, plus helpers to build and evaluate QGM
// graphs. Tests across core, engine and the benchmark harness use it.
package testutil

import (
	"fmt"
	"sort"
	"strings"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/exec"
	"starmagic/internal/qgm"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
	"starmagic/internal/storage"
)

// DB bundles a catalog and its storage.
type DB struct {
	Cat   *catalog.Catalog
	Store *storage.Store
}

// PaperSchema creates the paper's schema: department(deptno, deptname,
// mgrno), employee(empno, empname, workdept, salary), and the views mgrSal
// and avgMgrSal of Example 1.1.
func PaperSchema() (*DB, error) {
	cat := catalog.New()
	dept := &catalog.Table{
		Name: "department",
		Columns: []catalog.Column{
			{Name: "deptno", Type: datum.TInt},
			{Name: "deptname", Type: datum.TString},
			{Name: "mgrno", Type: datum.TInt},
		},
		Keys:    [][]int{{0}},
		Indexes: [][]int{{0}},
	}
	emp := &catalog.Table{
		Name: "employee",
		Columns: []catalog.Column{
			{Name: "empno", Type: datum.TInt},
			{Name: "empname", Type: datum.TString},
			{Name: "workdept", Type: datum.TInt},
			{Name: "salary", Type: datum.TFloat},
		},
		Keys:    [][]int{{0}},
		Indexes: [][]int{{0}, {2}},
	}
	if err := cat.AddTable(dept); err != nil {
		return nil, err
	}
	if err := cat.AddTable(emp); err != nil {
		return nil, err
	}
	views := []*catalog.View{
		{
			Name:    "mgrSal",
			Columns: []string{"empno", "empname", "workdept", "salary"},
			SQL: "SELECT e.empno, e.empname, e.workdept, e.salary " +
				"FROM employee e, department d WHERE e.empno = d.mgrno",
		},
		{
			Name:    "avgMgrSal",
			Columns: []string{"workdept", "avgsalary"},
			SQL:     "SELECT workdept, AVG(salary) FROM mgrSal GROUP BY workdept",
		},
		{
			Name:    "avgSal",
			Columns: []string{"workdept", "avgsalary"},
			SQL:     "SELECT workdept, AVG(salary) FROM employee GROUP BY workdept",
		},
	}
	for _, v := range views {
		if err := cat.AddView(v); err != nil {
			return nil, err
		}
	}
	store := storage.NewStore()
	store.Create(dept)
	store.Create(emp)
	return &DB{Cat: cat, Store: store}, nil
}

// LoadPaperData populates the schema with deterministic synthetic data:
// nDepts departments (deptno 1..nDepts, every 10th named 'Planning<no>',
// dept 1 named exactly 'Planning'), and empsPerDept employees per
// department. The manager of department d is its first employee. Employee
// salaries cycle deterministically; one employee in ~50 has a NULL
// workdept and departments divisible by 17 have a NULL manager.
func (db *DB) LoadPaperData(nDepts, empsPerDept int) error {
	dr, _ := db.Store.Relation("department")
	er, _ := db.Store.Relation("employee")
	empno := 0
	for d := 1; d <= nDepts; d++ {
		name := fmt.Sprintf("Dept%03d", d)
		if d == 1 {
			name = "Planning"
		} else if d%10 == 0 {
			name = fmt.Sprintf("Planning%03d", d)
		}
		mgr := datum.Int(int64(d*10000 + 1))
		if d%17 == 0 {
			mgr = datum.Null()
		}
		if err := dr.Insert(datum.Row{datum.Int(int64(d)), datum.String(name), mgr}); err != nil {
			return err
		}
		for i := 1; i <= empsPerDept; i++ {
			empno++
			eno := int64(d*10000 + i)
			wd := datum.Int(int64(d))
			if empno%50 == 0 {
				wd = datum.Null()
			}
			salary := float64(300 + (eno*37)%1700)
			row := datum.Row{
				datum.Int(eno),
				datum.String(fmt.Sprintf("emp%06d", eno)),
				wd,
				datum.Float(salary),
			}
			if err := er.Insert(row); err != nil {
				return err
			}
		}
	}
	db.Analyze()
	return nil
}

// Analyze refreshes optimizer statistics for all tables.
func (db *DB) Analyze() {
	for _, t := range db.Cat.Tables() {
		if rel, ok := db.Store.Relation(t.Name); ok {
			catalog.AnalyzeTable(t, rel.Rows())
		}
	}
}

// Build parses and binds a query into a QGM graph.
func (db *DB) Build(query string) (*qgm.Graph, error) {
	q, err := sql.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return semant.NewBuilder(db.Cat).Build(q)
}

// Eval evaluates a graph and renders rows as sorted strings for order-
// insensitive comparison. It returns the evaluator for counter inspection.
func (db *DB) Eval(g *qgm.Graph) ([]string, *exec.Evaluator, error) {
	ev := exec.New(db.Store)
	rows, err := ev.EvalGraph(g)
	if err != nil {
		return nil, nil, err
	}
	return RenderRows(rows), ev, nil
}

// RenderRows formats rows as sorted pipe-joined strings.
func RenderRows(rows []datum.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.Format()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// QueryD is the paper's running example (statement D0 over the views).
const QueryD = `SELECT d.deptname, s.workdept, s.avgsalary
FROM department d, avgMgrSal s
WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`
