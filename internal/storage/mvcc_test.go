package storage

import (
	"fmt"
	"sync"
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
)

// txnID builds an in-flight transaction id for tests.
func txnID(seq uint64) uint64 { return TxnIDBit | seq }

// rowsAt captures the relation under s and gathers the visible rows.
func rowsAt(r *Relation, s Snap) []datum.Row {
	c := r.capture(s, false)
	return c.visibleRows(s)
}

func TestSnapVisibility(t *testing.T) {
	self := txnID(1)
	other := txnID(2)
	cases := []struct {
		name       string
		begin, end uint64
		s          Snap
		want       bool
	}{
		{"committed live, after", 5, Live, Snap{TS: 10}, true},
		{"committed live, before", 5, Live, Snap{TS: 4}, false},
		{"committed live, at", 5, Live, Snap{TS: 5}, true},
		{"own insert", self, Live, Snap{TS: 10, Self: self}, true},
		{"foreign in-flight insert", other, Live, Snap{TS: 10, Self: self}, false},
		{"aborted insert", abortedBegin, Live, Snap{TS: 10, Self: self}, false},
		{"deleted before snapshot", 3, 7, Snap{TS: 8}, false},
		{"deleted after snapshot", 3, 7, Snap{TS: 6}, true},
		{"deleted at snapshot", 3, 7, Snap{TS: 7}, false},
		{"own delete", 3, self, Snap{TS: 10, Self: self}, false},
		{"foreign in-flight delete", 3, other, Snap{TS: 10, Self: self}, true},
		{"read-all sees committed", 5, Live, ReadAll, true},
		{"read-all skips in-flight", other, Live, ReadAll, false},
	}
	for _, c := range cases {
		if got := c.s.Visible(c.begin, c.end); got != c.want {
			t.Errorf("%s: Visible(%#x, %#x) under %+v = %v, want %v",
				c.name, c.begin, c.end, c.s, got, c.want)
		}
	}
}

func TestAppendCommitAbortVisibility(t *testing.T) {
	r := NewRelation(empMeta())
	if err := r.Insert(datum.Row{datum.Int(1), datum.Int(10), datum.Float(100)}); err != nil {
		t.Fatal(err)
	}
	id := txnID(7)
	pos, err := r.Append(datum.Row{datum.Int(2), datum.Int(20), datum.Float(200)}, id)
	if err != nil {
		t.Fatal(err)
	}
	// In flight: invisible to everyone but the writer.
	if n := len(rowsAt(r, Snap{TS: 100})); n != 1 {
		t.Fatalf("in-flight insert visible to reader: %d rows", n)
	}
	if n := len(rowsAt(r, Snap{TS: 100, Self: id})); n != 2 {
		t.Fatalf("in-flight insert invisible to writer: %d rows", n)
	}
	r.FinishAppend(pos, 5)
	if n := len(r.Rows()); n != 2 {
		t.Fatalf("committed insert: %d rows, want 2", n)
	}
	if n := len(rowsAt(r, Snap{TS: 4})); n != 1 {
		t.Fatalf("old snapshot sees new insert: %d rows", n)
	}

	// Aborted appends stay invisible forever.
	pos, err = r.Append(datum.Row{datum.Int(3), datum.Int(30), datum.Float(300)}, txnID(8))
	if err != nil {
		t.Fatal(err)
	}
	r.AbortAppend(pos)
	if n := len(r.Rows()); n != 2 {
		t.Fatalf("aborted insert visible: %d rows, want 2", n)
	}
}

func TestDeleteWhereFirstUpdaterWins(t *testing.T) {
	r := NewRelation(empMeta())
	for i := 1; i <= 4; i++ {
		if err := r.Insert(datum.Row{datum.Int(int64(i)), datum.Int(10), datum.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	all := func(datum.Row) (bool, error) { return true, nil }
	one := func(row datum.Row) (bool, error) { return row[0].I == 2, nil }

	// Transaction A claims row 2.
	a := txnID(1)
	var aPos []int
	n, err := r.DeleteWhere(Snap{TS: 10, Self: a}, a, one, func(pos int, _ datum.Row) { aPos = append(aPos, pos) })
	if err != nil || n != 1 {
		t.Fatalf("first delete: n=%d err=%v", n, err)
	}

	// Transaction B touching the same row loses immediately.
	b := txnID(2)
	var bPos []int
	_, err = r.DeleteWhere(Snap{TS: 10, Self: b}, b, all, func(pos int, _ datum.Row) { bPos = append(bPos, pos) })
	if err != ErrConflict {
		t.Fatalf("overlapping delete: err=%v, want ErrConflict", err)
	}
	// B must release its partial claims for the rows it did win.
	for _, pos := range bPos {
		r.AbortDelete(pos)
	}

	// A commits; its row disappears at ts 11, stays visible at ts 10.
	for _, pos := range aPos {
		r.FinishDelete(pos, 11)
	}
	if n := len(rowsAt(r, Snap{TS: 11})); n != 3 {
		t.Fatalf("after commit: %d rows, want 3", n)
	}
	if n := len(rowsAt(r, Snap{TS: 10})); n != 4 {
		t.Fatalf("old snapshot: %d rows, want 4", n)
	}

	// After B's aborts, a third transaction can claim everything left.
	c := txnID(3)
	n, err = r.DeleteWhere(Snap{TS: 11, Self: c}, c, all, func(int, datum.Row) {})
	if err != nil || n != 3 {
		t.Fatalf("post-abort delete: n=%d err=%v", n, err)
	}
}

func TestVacuumHorizon(t *testing.T) {
	r := NewRelation(empMeta())
	for i := 1; i <= 3; i++ {
		if err := r.Insert(datum.Row{datum.Int(int64(i)), datum.Int(10), datum.Float(1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete row 2 at commit ts 5.
	id := txnID(1)
	var marks []int
	if _, err := r.DeleteWhere(Snap{TS: 4, Self: id}, id,
		func(row datum.Row) (bool, error) { return row[0].I == 2, nil },
		func(pos int, _ datum.Row) { marks = append(marks, pos) }); err != nil {
		t.Fatal(err)
	}
	for _, pos := range marks {
		r.FinishDelete(pos, 5)
	}
	if g := r.Garbage(); g != 1 {
		t.Fatalf("garbage = %d, want 1", g)
	}

	// A snapshot at ts 4 still needs the version: horizon 4 reclaims nothing.
	if n := r.Vacuum(4); n != 0 {
		t.Fatalf("vacuum below horizon reclaimed %d", n)
	}
	if rows := rowsAt(r, Snap{TS: 4}); len(rows) != 3 {
		t.Fatalf("snapshot at 4 sees %d rows after early vacuum", len(rows))
	}

	// Horizon 5: the deleted version is invisible to every snapshot >= 5.
	if n := r.Vacuum(5); n != 1 {
		t.Fatalf("vacuum reclaimed %d, want 1", n)
	}
	rows := r.Rows()
	if len(rows) != 2 || rows[0][0].I != 1 || rows[1][0].I != 3 {
		t.Fatalf("post-vacuum rows: %v", rows)
	}
	// Indexes were rebuilt against the compacted positions.
	if got, ok := r.Lookup([]int{0}, datum.Row{datum.Int(3)}); !ok || len(got) != 1 {
		t.Fatalf("post-vacuum index lookup: %v %v", got, ok)
	}
	if got, ok := r.Lookup([]int{0}, datum.Row{datum.Int(2)}); !ok || len(got) != 0 {
		t.Fatalf("post-vacuum index still finds deleted row: %v %v", got, ok)
	}
}

func TestVacuumSkipsInFlight(t *testing.T) {
	r := NewRelation(empMeta())
	if err := r.Insert(datum.Row{datum.Int(1), datum.Int(10), datum.Float(1)}); err != nil {
		t.Fatal(err)
	}
	id := txnID(1)
	pos, err := r.Append(datum.Row{datum.Int(2), datum.Int(20), datum.Float(2)}, id)
	if err != nil {
		t.Fatal(err)
	}
	// A transaction holds uncommitted positions: vacuum must not move rows.
	if n := r.Vacuum(100); n != 0 {
		t.Fatalf("vacuum with in-flight writes reclaimed %d", n)
	}
	r.FinishAppend(pos, 5)
	if n := len(r.Rows()); n != 2 {
		t.Fatalf("rows after commit = %d", n)
	}
}

// TestCompactionPreservesSnapshotStrings is the intern-compaction guard: a
// view captured before a DELETE must keep resolving its string ids even
// after vacuum plus compaction rewrites the intern table, because the
// captured columnar arrays still hold the old ids.
func TestCompactionPreservesSnapshotStrings(t *testing.T) {
	s := NewStore()
	meta := &catalog.Table{
		Name: "words",
		Columns: []catalog.Column{
			{Name: "id", Type: datum.TInt},
			{Name: "w", Type: datum.TString},
		},
	}
	r := s.Create(meta)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := r.Insert(datum.Row{datum.Int(int64(i)), datum.String(fmt.Sprintf("word-%06d", i))}); err != nil {
			t.Fatal(err)
		}
	}

	// Open a snapshot view before the delete.
	view := s.NewView(Snap{TS: 0})
	rv, ok := view.Relation("words")
	if !ok {
		t.Fatal("no relation in view")
	}

	// Delete everything, commit, vacuum, compact: the intern table shrinks.
	id := txnID(1)
	var marks []int
	if _, err := r.DeleteWhere(Snap{TS: 0, Self: id}, id,
		func(datum.Row) (bool, error) { return true, nil },
		func(pos int, _ datum.Row) { marks = append(marks, pos) }); err != nil {
		t.Fatal(err)
	}
	for _, pos := range marks {
		r.FinishDelete(pos, 1)
	}
	before := s.Intern().Stats().Strings
	if got := s.Vacuum(1); got != n {
		t.Fatalf("vacuum reclaimed %d, want %d", got, n)
	}
	s.MaybeCompactIntern()
	if after := s.Intern().Stats().Strings; after >= before/2 {
		t.Fatalf("compaction did not shrink intern table: %d -> %d", before, after)
	}

	// The old view still returns every original string: its capture holds
	// the pre-compaction column arrays and intern table.
	rows := rv.Rows()
	if len(rows) != n {
		t.Fatalf("snapshot rows = %d, want %d", len(rows), n)
	}
	for i, row := range rows {
		if want := fmt.Sprintf("word-%06d", i); row[1].S != want {
			t.Fatalf("row %d string = %q, want %q", i, row[1].S, want)
		}
	}
	// And its vectorized capture resolves ids through its own intern table.
	tbl, _, _, tab := rv.Vec()
	if tbl.N != n || tab == nil {
		t.Fatalf("vec capture: n=%d tab=%v", tbl.N, tab)
	}
}

// TestConcurrentAppendScan runs writers committing appends against readers
// capturing snapshots, under -race: every capture must be a transactionally
// consistent prefix (commit order is the insert order here, so a reader that
// sees row k must see all rows committed before k).
func TestConcurrentAppendScan(t *testing.T) {
	r := NewRelation(empMeta())
	const writers, perWriter = 4, 200
	var ts struct {
		sync.Mutex
		next uint64
	}
	ts.next = 1

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := txnID(uint64(w*perWriter + i + 1))
				pos, err := r.Append(datum.Row{datum.Int(int64(w)), datum.Int(int64(i)), datum.Float(0)}, id)
				if err != nil {
					t.Error(err)
					return
				}
				ts.Lock()
				commit := ts.next
				ts.next++
				r.FinishAppend(pos, commit)
				ts.Unlock()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	for {
		select {
		case <-done:
			if n := len(r.Rows()); n != writers*perWriter {
				t.Fatalf("final rows = %d, want %d", n, writers*perWriter)
			}
			return
		default:
		}
		ts.Lock()
		now := ts.next - 1
		ts.Unlock()
		got := len(rowsAt(r, Snap{TS: now}))
		// Everything committed at or below `now` must be visible; later
		// commits may or may not be, but never more than have finished.
		if got < int(now) {
			t.Fatalf("snapshot at %d sees only %d rows", now, got)
		}
	}
}
