package storage

import (
	"testing"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
)

func empMeta() *catalog.Table {
	return &catalog.Table{
		Name: "employee",
		Columns: []catalog.Column{
			{Name: "empno", Type: datum.TInt},
			{Name: "workdept", Type: datum.TInt},
			{Name: "salary", Type: datum.TFloat},
		},
		Keys:    [][]int{{0}},
		Indexes: [][]int{{0}, {1}},
	}
}

func TestInsertAndScan(t *testing.T) {
	r := NewRelation(empMeta())
	rows := []datum.Row{
		{datum.Int(1), datum.Int(10), datum.Float(100)},
		{datum.Int(2), datum.Int(10), datum.Float(200)},
		{datum.Int(3), datum.Int(20), datum.Float(300)},
	}
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestInsertValidation(t *testing.T) {
	r := NewRelation(empMeta())
	if err := r.Insert(datum.Row{datum.Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := r.Insert(datum.Row{datum.String("x"), datum.Int(1), datum.Float(1)}); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestInsertWidensIntToFloat(t *testing.T) {
	r := NewRelation(empMeta())
	if err := r.Insert(datum.Row{datum.Int(1), datum.Int(10), datum.Int(100)}); err != nil {
		t.Fatal(err)
	}
	got := r.Rows()[0][2]
	if got.T != datum.TFloat || got.F != 100 {
		t.Errorf("salary stored as %#v; want FLOAT 100", got)
	}
}

func TestInsertTypedNull(t *testing.T) {
	r := NewRelation(empMeta())
	if err := r.Insert(datum.Row{datum.Int(1), datum.Null(), datum.Null()}); err != nil {
		t.Fatal(err)
	}
	got := r.Rows()[0][1]
	if !got.IsNull() || got.T != datum.TInt {
		t.Errorf("NULL stored as %#v; want typed NULL INT", got)
	}
}

func TestIndexLookup(t *testing.T) {
	r := NewRelation(empMeta())
	for i := 1; i <= 6; i++ {
		dept := 10
		if i > 3 {
			dept = 20
		}
		if err := r.Insert(datum.Row{datum.Int(int64(i)), datum.Int(int64(dept)), datum.Float(float64(i * 100))}); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := r.Lookup([]int{1}, datum.Row{datum.Int(10)})
	if !ok {
		t.Fatal("index on workdept not used")
	}
	if len(got) != 3 {
		t.Errorf("lookup(workdept=10) returned %d rows; want 3", len(got))
	}
	got, ok = r.Lookup([]int{0}, datum.Row{datum.Int(5)})
	if !ok || len(got) != 1 || got[0][0].I != 5 {
		t.Errorf("pk lookup wrong: %v %v", got, ok)
	}
	if _, ok := r.Lookup([]int{2}, datum.Row{datum.Float(100)}); ok {
		t.Error("lookup on unindexed column claimed an index")
	}
}

func TestIndexLookupNullNeverMatches(t *testing.T) {
	r := NewRelation(empMeta())
	if err := r.Insert(datum.Row{datum.Int(1), datum.Null(), datum.Float(1)}); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup([]int{1}, datum.Row{datum.Null()})
	if !ok {
		t.Fatal("index should exist")
	}
	if len(got) != 0 {
		t.Error("NULL probe matched rows; SQL equality never matches NULL")
	}
}

func TestLookupMissingKey(t *testing.T) {
	r := NewRelation(empMeta())
	if err := r.Insert(datum.Row{datum.Int(1), datum.Int(10), datum.Float(1)}); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup([]int{0}, datum.Row{datum.Int(42)})
	if !ok || len(got) != 0 {
		t.Errorf("missing key lookup: %v %v", got, ok)
	}
}

func TestMultiColumnIndexOrderInsensitive(t *testing.T) {
	meta := &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "a", Type: datum.TInt},
			{Name: "b", Type: datum.TInt},
		},
		Indexes: [][]int{{1, 0}},
	}
	r := NewRelation(meta)
	if err := r.Insert(datum.Row{datum.Int(1), datum.Int(2)}); err != nil {
		t.Fatal(err)
	}
	// Probe with (a, b) order while index is declared (b, a).
	got, ok := r.Lookup([]int{0, 1}, datum.Row{datum.Int(1), datum.Int(2)})
	if !ok || len(got) != 1 {
		t.Errorf("reordered probe: %v %v", got, ok)
	}
	got, ok = r.Lookup([]int{1, 0}, datum.Row{datum.Int(2), datum.Int(1)})
	if !ok || len(got) != 1 {
		t.Errorf("declared-order probe: %v %v", got, ok)
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	s.Create(empMeta())
	if _, ok := s.Relation("EMPLOYEE"); !ok {
		t.Error("case-insensitive relation lookup failed")
	}
	if _, ok := s.Relation("ghost"); ok {
		t.Error("phantom relation found")
	}
}

// TestLookupAllocs pins the probe path's allocation behavior: a missed
// probe is allocation-free (pooled scratch, string(buf) map index), and a
// hit allocates only the returned row slice.
func TestLookupAllocs(t *testing.T) {
	r := NewRelation(empMeta())
	for i := 0; i < 64; i++ {
		if err := r.Insert(datum.Row{datum.Int(int64(i)), datum.Int(int64(i % 8)), datum.Float(100)}); err != nil {
			t.Fatal(err)
		}
	}
	missKey := datum.Row{datum.Int(9999)}
	hitKey := datum.Row{datum.Int(7)}
	// Warm the pool outside the measured runs.
	r.Lookup([]int{0}, missKey)

	if avg := testing.AllocsPerRun(200, func() {
		if _, ok := r.Lookup([]int{0}, missKey); !ok {
			t.Fatal("index unexpectedly missing")
		}
	}); avg > 0 {
		t.Errorf("missed probe allocates %.1f times per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		rows, ok := r.Lookup([]int{0}, hitKey)
		if !ok || len(rows) != 1 {
			t.Fatal("probe failed")
		}
	}); avg > 1 {
		t.Errorf("hit probe allocates %.1f times per run, want <= 1 (result slice)", avg)
	}
}
