// Package storage is the in-memory row store behind base tables, with hash
// indexes for equality lookups. It substitutes for the DB2/Starburst storage
// layer of the paper's testbed: the magic-sets transformation is a
// query-rewrite technique, so any store exposing scans and index lookups
// exercises the same optimized plans.
//
// Relations and the store are safe for concurrent use: reads (scans, index
// probes) share an RWMutex read lock so many evaluators — including the
// parallel workers of a single evaluator — can run at once, while Insert and
// Rebuild serialize behind the write lock.
package storage

import (
	"fmt"
	"sync"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/vec"
)

// HashIndex maps equality keys over a column set to row positions. Keys are
// the collision-safe binary encoding of datum.AppendKey.
type HashIndex struct {
	Cols    []int
	buckets map[string][]int
}

// Relation holds the rows of one base table plus its indexes and a
// columnar shadow: one typed vec.Col per column, maintained on the same
// write path as the row store, with string values interned at ingest.
// The shadow is what the vectorized executor scans; the row slice stays
// authoritative for row-at-a-time binding and projection.
type Relation struct {
	Meta *catalog.Table

	mu      sync.RWMutex
	rows    []datum.Row
	cols    []vec.Col
	tab     *vec.Intern
	indexes []*HashIndex
	keyBuf  []byte // reused under mu write lock when indexing inserts
}

// NewRelation creates an empty relation for the table, building one hash
// index per index declared in the table metadata. Stores created through
// Store.Create share the store's intern table; a directly constructed
// relation gets a private one.
func NewRelation(meta *catalog.Table) *Relation {
	r := &Relation{Meta: meta, tab: vec.NewIntern()}
	r.indexes = newIndexes(meta)
	r.cols = newCols(meta)
	return r
}

func newCols(meta *catalog.Table) []vec.Col {
	cols := make([]vec.Col, len(meta.Columns))
	for i, c := range meta.Columns {
		cols[i] = vec.NewCol(c.Type)
	}
	return cols
}

func newIndexes(meta *catalog.Table) []*HashIndex {
	var idxs []*HashIndex
	for _, cols := range meta.Indexes {
		idxs = append(idxs, &HashIndex{
			Cols:    append([]int(nil), cols...),
			buckets: make(map[string][]int),
		})
	}
	return idxs
}

// Insert appends a row after validating arity and types. Values of INT type
// inserted into FLOAT columns are widened.
func (r *Relation) Insert(row datum.Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.insertLocked(row)
}

func (r *Relation) insertLocked(row datum.Row) error {
	if len(row) != len(r.Meta.Columns) {
		return fmt.Errorf("table %s: inserting %d values into %d columns",
			r.Meta.Name, len(row), len(r.Meta.Columns))
	}
	stored := make(datum.Row, len(row))
	for i, d := range row {
		want := r.Meta.Columns[i].Type
		switch {
		case d.IsNull():
			stored[i] = datum.NullOf(want)
		case d.T == want:
			stored[i] = d
		case d.T == datum.TInt && want == datum.TFloat:
			stored[i] = datum.Float(float64(d.I))
		default:
			return fmt.Errorf("table %s column %s: cannot store %s value",
				r.Meta.Name, r.Meta.Columns[i].Name, d.T)
		}
	}
	pos := len(r.rows)
	r.rows = append(r.rows, stored)
	for i, d := range stored {
		r.cols[i].Append(d, r.tab)
	}
	for _, idx := range r.indexes {
		r.keyBuf = datum.AppendKeyOf(r.keyBuf[:0], stored, idx.Cols)
		k := string(r.keyBuf)
		idx.buckets[k] = append(idx.buckets[k], pos)
	}
	return nil
}

// Rows returns the stored rows. Callers must not mutate them. The returned
// slice is a stable snapshot: concurrent inserts never change rows already
// visible through it.
func (r *Relation) Rows() []datum.Row {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rows
}

// Snapshot returns a zero-copy columnar view of the relation together with
// the matching row snapshot. Both share the append-only backing arrays under
// the same contract as Rows: entries [0, N) never change after becoming
// visible, so the vectorized executor scans the column slices directly with
// no per-scan copy. The columnar and row views describe exactly the same N
// rows.
func (r *Relation) Snapshot() (vec.Table, []datum.Row) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := vec.Table{N: len(r.rows), Cols: make([]vec.Col, len(r.cols))}
	copy(t.Cols, r.cols)
	return t, r.rows
}

// Intern returns the intern table the relation's string columns resolve
// through.
func (r *Relation) Intern() *vec.Intern { return r.tab }

// Rebuild replaces the relation's contents, revalidating and reindexing
// every row (DELETE and UPDATE go through here).
func (r *Relation) Rebuild(rows []datum.Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, oldIdx, oldCols := r.rows, r.indexes, r.cols
	r.rows = nil
	r.indexes = newIndexes(r.Meta)
	r.cols = newCols(r.Meta)
	for _, row := range rows {
		if err := r.insertLocked(row); err != nil {
			r.rows, r.indexes, r.cols = old, oldIdx, oldCols // restore on failure
			return err
		}
	}
	return nil
}

// Len returns the number of stored rows.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.rows)
}

// probeBuf is the reusable scratch of one Lookup call. Lookup runs under
// the shared read lock — concurrent probes from parallel evaluators are the
// norm — so the scratch lives in a pool rather than on the relation.
type probeBuf struct {
	probe datum.Row
	key   []byte
}

var probePool = sync.Pool{New: func() any { return &probeBuf{key: make([]byte, 0, 48)} }}

// Lookup returns the rows whose indexed columns equal key, using the index
// over exactly cols if one exists. The boolean reports whether an index was
// available; when false the caller must fall back to a scan. The probe
// itself is allocation-free (pooled scratch plus the string(buf) map
// index); only a non-empty result allocates, for the returned slice.
func (r *Relation) Lookup(cols []int, key datum.Row) ([]datum.Row, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx := r.findIndexLocked(cols)
	if idx == nil {
		return nil, false
	}
	pb := probePool.Get().(*probeBuf)
	defer probePool.Put(pb)
	// The index stores keys in idx.Cols order; reorder the probe key to
	// match when the caller's column order differs.
	pb.probe = pb.probe[:0]
	for _, c := range idx.Cols {
		found := false
		for j, cc := range cols {
			if cc == c {
				pb.probe = append(pb.probe, key[j])
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	// SQL equality never matches NULL.
	for _, d := range pb.probe {
		if d.IsNull() {
			return nil, true
		}
	}
	pb.key = datum.AppendKey(pb.key[:0], pb.probe)
	positions := idx.buckets[string(pb.key)]
	if len(positions) == 0 {
		return nil, true
	}
	out := make([]datum.Row, len(positions))
	for i, pos := range positions {
		out[i] = r.rows[pos]
	}
	return out, true
}

// findIndexLocked matches cols against an index as a set, without
// allocating (Lookup is the executor's per-outer-row hot path).
func (r *Relation) findIndexLocked(cols []int) *HashIndex {
	for _, idx := range r.indexes {
		if len(idx.Cols) != len(cols) {
			continue
		}
		match := true
		for _, c := range cols {
			found := false
			for _, ic := range idx.Cols {
				if ic == c {
					found = true
					break
				}
			}
			if !found {
				match = false
				break
			}
		}
		if match {
			return idx
		}
	}
	return nil
}

// Store maps table names to relations. Safe for concurrent use. All
// relations of one store share one intern table, so equal strings in
// different tables carry the same id — which is what lets the executor
// join and compare string columns across tables on ids alone. The table
// has store (catalog) lifetime: it survives catalog epoch bumps, only ever
// grows, and ids stay stable once assigned.
type Store struct {
	mu   sync.RWMutex
	rels map[string]*Relation
	tab  *vec.Intern
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{rels: make(map[string]*Relation), tab: vec.NewIntern()}
}

// Intern returns the store-wide string intern table.
func (s *Store) Intern() *vec.Intern { return s.tab }

// Create allocates storage for a table, sharing the store's intern table.
func (s *Store) Create(meta *catalog.Table) *Relation {
	r := NewRelation(meta)
	r.tab = s.tab
	s.mu.Lock()
	s.rels[lower(meta.Name)] = r
	s.mu.Unlock()
	return r
}

// Relation resolves a relation by table name.
func (s *Store) Relation(name string) (*Relation, bool) {
	s.mu.RLock()
	r, ok := s.rels[lower(name)]
	s.mu.RUnlock()
	return r, ok
}

// Drop releases a table's storage. Dropping an unknown table is a no-op.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	delete(s.rels, lower(name))
	s.mu.Unlock()
}

// compactMinStrings is the intern-table size below which compaction is never
// attempted: rebuild bookkeeping on a small table costs more than the bytes
// it could reclaim.
const compactMinStrings = 1024

// MaybeCompactIntern rebuilds the store-wide string intern table when most
// of it is garbage — strings whose every referencing row was deleted or
// whose table was dropped. The intern table is append-only (ids must stay
// stable while any reader can hold them), so on a long-lived server DELETE
// and DROP TABLE would otherwise grow it without bound; rebuild-on-threshold
// bounds it at 2× the live set.
//
// Compaction walks every relation's string columns to find live ids, and
// fires only when the table holds at least compactMinStrings entries and
// more than half are dead. It re-interns the live strings into a fresh table
// (dense new ids) and rewrites every relation's ID columns onto fresh
// backing arrays, leaving previously taken snapshots consistent with the old
// table they captured.
//
// The caller must exclude concurrent writers AND readers (the engine runs it
// under its database-wide write lock, on the DELETE/DROP TABLE paths):
// readers resolve ids through the store's current table, so swapping it
// under a running scan would mix id spaces. It reports whether a rebuild
// happened.
func (s *Store) MaybeCompactIntern() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	strs := s.tab.Strs()
	total := len(strs)
	if total < compactMinStrings {
		return false
	}
	live := make([]bool, total)
	nLive := 0
	for _, r := range s.rels {
		r.mu.RLock()
		for ci := range r.cols {
			c := &r.cols[ci]
			if c.T != datum.TString {
				continue
			}
			for i, id := range c.IDs {
				if !c.Nulls[i] && !live[id] {
					live[id] = true
					nLive++
				}
			}
		}
		r.mu.RUnlock()
	}
	if 2*nLive > total {
		return false
	}
	ntab := vec.NewIntern()
	remap := make([]uint32, total)
	for id, ok := range live {
		if ok {
			remap[id] = ntab.Intern(strs[id])
		}
	}
	for _, r := range s.rels {
		r.mu.Lock()
		for ci := range r.cols {
			c := &r.cols[ci]
			if c.T != datum.TString || len(c.IDs) == 0 {
				continue
			}
			nids := make([]uint32, len(c.IDs))
			for i, id := range c.IDs {
				if !c.Nulls[i] {
					nids[i] = remap[id]
				}
			}
			c.IDs = nids
		}
		r.tab = ntab
		r.mu.Unlock()
	}
	s.tab = ntab
	return true
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
