// Package storage is the in-memory row store behind base tables, with hash
// indexes for equality lookups. It substitutes for the DB2/Starburst storage
// layer of the paper's testbed: the magic-sets transformation is a
// query-rewrite technique, so any store exposing scans and index lookups
// exercises the same optimized plans.
package storage

import (
	"fmt"
	"sort"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
)

// HashIndex maps equality keys over a column set to row positions.
type HashIndex struct {
	Cols    []int
	buckets map[string][]int
}

// Relation holds the rows of one base table plus its indexes.
type Relation struct {
	Meta    *catalog.Table
	rows    []datum.Row
	indexes []*HashIndex
}

// NewRelation creates an empty relation for the table, building one hash
// index per index declared in the table metadata.
func NewRelation(meta *catalog.Table) *Relation {
	r := &Relation{Meta: meta}
	for _, cols := range meta.Indexes {
		r.indexes = append(r.indexes, &HashIndex{
			Cols:    append([]int(nil), cols...),
			buckets: make(map[string][]int),
		})
	}
	return r
}

// Insert appends a row after validating arity and types. Values of INT type
// inserted into FLOAT columns are widened.
func (r *Relation) Insert(row datum.Row) error {
	if len(row) != len(r.Meta.Columns) {
		return fmt.Errorf("table %s: inserting %d values into %d columns",
			r.Meta.Name, len(row), len(r.Meta.Columns))
	}
	stored := make(datum.Row, len(row))
	for i, d := range row {
		want := r.Meta.Columns[i].Type
		switch {
		case d.IsNull():
			stored[i] = datum.NullOf(want)
		case d.T == want:
			stored[i] = d
		case d.T == datum.TInt && want == datum.TFloat:
			stored[i] = datum.Float(float64(d.I))
		default:
			return fmt.Errorf("table %s column %s: cannot store %s value",
				r.Meta.Name, r.Meta.Columns[i].Name, d.T)
		}
	}
	pos := len(r.rows)
	r.rows = append(r.rows, stored)
	for _, idx := range r.indexes {
		k := stored.KeyOf(idx.Cols)
		idx.buckets[k] = append(idx.buckets[k], pos)
	}
	return nil
}

// Rows returns the stored rows. Callers must not mutate them.
func (r *Relation) Rows() []datum.Row { return r.rows }

// Rebuild replaces the relation's contents, revalidating and reindexing
// every row (DELETE and UPDATE go through here).
func (r *Relation) Rebuild(rows []datum.Row) error {
	old, oldIdx := r.rows, r.indexes
	r.rows = nil
	r.indexes = nil
	for _, cols := range r.Meta.Indexes {
		r.indexes = append(r.indexes, &HashIndex{
			Cols:    append([]int(nil), cols...),
			buckets: make(map[string][]int),
		})
	}
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			r.rows, r.indexes = old, oldIdx // restore on failure
			return err
		}
	}
	return nil
}

// Len returns the number of stored rows.
func (r *Relation) Len() int { return len(r.rows) }

// Lookup returns the rows whose indexed columns equal key, using the index
// over exactly cols if one exists. The boolean reports whether an index was
// available; when false the caller must fall back to a scan.
func (r *Relation) Lookup(cols []int, key datum.Row) ([]datum.Row, bool) {
	idx := r.findIndex(cols)
	if idx == nil {
		return nil, false
	}
	// The index stores keys in idx.Cols order; reorder the probe key to
	// match when the caller's column order differs.
	probe := make(datum.Row, len(idx.Cols))
	for i, c := range idx.Cols {
		found := false
		for j, cc := range cols {
			if cc == c {
				probe[i] = key[j]
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	// SQL equality never matches NULL.
	for _, d := range probe {
		if d.IsNull() {
			return nil, true
		}
	}
	var out []datum.Row
	for _, pos := range idx.buckets[probe.Key()] {
		out = append(out, r.rows[pos])
	}
	return out, true
}

func (r *Relation) findIndex(cols []int) *HashIndex {
	want := append([]int(nil), cols...)
	sort.Ints(want)
	for _, idx := range r.indexes {
		have := append([]int(nil), idx.Cols...)
		sort.Ints(have)
		if len(have) != len(want) {
			continue
		}
		match := true
		for i := range have {
			if have[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return idx
		}
	}
	return nil
}

// Store maps table names to relations.
type Store struct {
	rels map[string]*Relation
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{rels: make(map[string]*Relation)} }

// Create allocates storage for a table.
func (s *Store) Create(meta *catalog.Table) *Relation {
	r := NewRelation(meta)
	s.rels[lower(meta.Name)] = r
	return r
}

// Relation resolves a relation by table name.
func (s *Store) Relation(name string) (*Relation, bool) {
	r, ok := s.rels[lower(name)]
	return r, ok
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
