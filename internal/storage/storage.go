// Package storage is the in-memory row store behind base tables, with hash
// indexes for equality lookups. It substitutes for the DB2/Starburst storage
// layer of the paper's testbed: the magic-sets transformation is a
// query-rewrite technique, so any store exposing scans and index lookups
// exercises the same optimized plans.
//
// Relations and the store are safe for concurrent use: reads (scans, index
// probes) share an RWMutex read lock so many evaluators — including the
// parallel workers of a single evaluator — can run at once, while Insert and
// Rebuild serialize behind the write lock. Relations are multi-versioned:
// see mvcc.go for the begin/end stamp protocol, snapshot visibility, views,
// and vacuum.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/vec"
)

// HashIndex maps equality keys over a column set to row positions. Keys are
// the collision-safe binary encoding of datum.AppendKey.
type HashIndex struct {
	Cols    []int
	buckets map[string][]int
}

// Relation holds the rows of one base table plus its indexes and a
// columnar shadow: one typed vec.Col per column, maintained on the same
// write path as the row store, with string values interned at ingest.
// The shadow is what the vectorized executor scans; the row slice stays
// authoritative for row-at-a-time binding and projection.
type Relation struct {
	Meta *catalog.Table

	mu      sync.RWMutex
	rows    []datum.Row
	begins  []uint64 // version begin stamps; elements accessed atomically
	ends    []uint64 // version end stamps (Live = not deleted)
	cols    []vec.Col
	tab     *vec.Intern
	indexes []*HashIndex
	keyBuf  []byte // reused under mu write lock when indexing inserts

	// dirty counts versions that are not plainly visible: in-flight or
	// aborted begins plus any end stamp != Live. dirty == 0 is the
	// zero-copy fast path: every stored version is committed and live.
	dirty atomic.Int64
	// inflight counts unresolved transaction markers; vacuum skips the
	// relation while any exist, keeping write-set positions stable.
	inflight atomic.Int64
	// maxBegin is the largest committed begin stamp; with dirty == 0 a
	// snapshot at TS >= maxBegin sees exactly the captured prefix.
	maxBegin atomic.Uint64
}

// NewRelation creates an empty relation for the table, building one hash
// index per index declared in the table metadata. Stores created through
// Store.Create share the store's intern table; a directly constructed
// relation gets a private one.
func NewRelation(meta *catalog.Table) *Relation {
	r := &Relation{Meta: meta, tab: vec.NewIntern()}
	r.indexes = newIndexes(meta)
	r.cols = newCols(meta)
	return r
}

func newCols(meta *catalog.Table) []vec.Col {
	cols := make([]vec.Col, len(meta.Columns))
	for i, c := range meta.Columns {
		cols[i] = vec.NewCol(c.Type)
	}
	return cols
}

func newIndexes(meta *catalog.Table) []*HashIndex {
	var idxs []*HashIndex
	for _, cols := range meta.Indexes {
		idxs = append(idxs, &HashIndex{
			Cols:    append([]int(nil), cols...),
			buckets: make(map[string][]int),
		})
	}
	return idxs
}

// Insert appends a row after validating arity and types, stamped as
// committed at timestamp zero (visible to every snapshot). Values of INT
// type inserted into FLOAT columns are widened. Transactional inserts go
// through Append with the writer's transaction id.
func (r *Relation) Insert(row datum.Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.appendLocked(row, 0)
	return err
}

func (r *Relation) appendLocked(row datum.Row, begin uint64) (int, error) {
	if len(row) != len(r.Meta.Columns) {
		return 0, fmt.Errorf("table %s: inserting %d values into %d columns",
			r.Meta.Name, len(row), len(r.Meta.Columns))
	}
	stored := make(datum.Row, len(row))
	for i, d := range row {
		want := r.Meta.Columns[i].Type
		switch {
		case d.IsNull():
			stored[i] = datum.NullOf(want)
		case d.T == want:
			stored[i] = d
		case d.T == datum.TInt && want == datum.TFloat:
			stored[i] = datum.Float(float64(d.I))
		default:
			return 0, fmt.Errorf("table %s column %s: cannot store %s value",
				r.Meta.Name, r.Meta.Columns[i].Name, d.T)
		}
	}
	pos := len(r.rows)
	r.rows = append(r.rows, stored)
	r.begins = append(r.begins, begin)
	r.ends = append(r.ends, Live)
	if begin&TxnIDBit != 0 {
		r.dirty.Add(1)
		r.inflight.Add(1)
	} else {
		maxU64(&r.maxBegin, begin)
	}
	for i, d := range stored {
		r.cols[i].Append(d, r.tab)
	}
	for _, idx := range r.indexes {
		r.keyBuf = datum.AppendKeyOf(r.keyBuf[:0], stored, idx.Cols)
		k := string(r.keyBuf)
		idx.buckets[k] = append(idx.buckets[k], pos)
	}
	return pos, nil
}

// Rows returns the rows visible to a ReadAll snapshot (every committed,
// undeleted version). Callers must not mutate them. When the relation holds
// no dead or in-flight versions this is the zero-copy stable prefix, as
// before MVCC; otherwise it gathers.
func (r *Relation) Rows() []datum.Row {
	c := r.capture(ReadAll, false)
	return c.visibleRows(ReadAll)
}

// Snapshot returns a zero-copy columnar view of the relation together with
// the matching row snapshot. Both share the append-only backing arrays:
// entries [0, N) never change after becoming visible, so the vectorized
// executor scans the column slices directly with no per-scan copy. The
// columnar and row views describe exactly the same N stored versions —
// including dead or uncommitted ones; callers needing snapshot visibility
// go through a View (RelView.Vec carries the visibility selection).
func (r *Relation) Snapshot() (vec.Table, []datum.Row) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := vec.Table{N: len(r.rows), Cols: make([]vec.Col, len(r.cols))}
	copy(t.Cols, r.cols)
	return t, r.rows
}

// Intern returns the intern table the relation's string columns resolve
// through.
func (r *Relation) Intern() *vec.Intern { return r.tab }

// Rebuild replaces the relation's contents, revalidating and reindexing
// every row. All new versions are stamped committed-at-zero. It is a bulk
// replace for tests and loaders; transactional DELETE/UPDATE use the
// version protocol instead, and Rebuild must not run while any transaction
// markers are unresolved (their positions would dangle).
func (r *Relation) Rebuild(rows []datum.Row) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, oldIdx, oldCols := r.rows, r.indexes, r.cols
	oldBegins, oldEnds := r.begins, r.ends
	r.rows, r.begins, r.ends = nil, nil, nil
	r.indexes = newIndexes(r.Meta)
	r.cols = newCols(r.Meta)
	for _, row := range rows {
		if _, err := r.appendLocked(row, 0); err != nil {
			r.rows, r.indexes, r.cols = old, oldIdx, oldCols // restore on failure
			r.begins, r.ends = oldBegins, oldEnds
			return err
		}
	}
	r.dirty.Store(0)
	r.inflight.Store(0)
	return nil
}

// Len returns the number of rows visible to a ReadAll snapshot.
func (r *Relation) Len() int {
	r.mu.RLock()
	n := len(r.rows)
	dirty := r.dirty.Load()
	r.mu.RUnlock()
	if dirty == 0 {
		return n
	}
	return len(r.Rows())
}

// probeBuf is the reusable scratch of one Lookup call. Lookup runs under
// the shared read lock — concurrent probes from parallel evaluators are the
// norm — so the scratch lives in a pool rather than on the relation.
type probeBuf struct {
	probe datum.Row
	key   []byte
}

var probePool = sync.Pool{New: func() any { return &probeBuf{key: make([]byte, 0, 48)} }}

// Lookup returns the rows whose indexed columns equal key, using the index
// over exactly cols if one exists, filtered to a ReadAll snapshot. The
// boolean reports whether an index was available; when false the caller
// must fall back to a scan. The probe itself is allocation-free (pooled
// scratch plus the string(buf) map index); only a non-empty result
// allocates, for the returned slice.
func (r *Relation) Lookup(cols []int, key datum.Row) ([]datum.Row, bool) {
	return r.LookupSnap(cols, key, ReadAll)
}

// probeLocked resolves cols against an index and probes it, returning the
// matching version positions. The second return distinguishes "no index"
// (false) from an empty probe result (true, nil). Caller holds the read
// lock.
func (r *Relation) probeLocked(cols []int, key datum.Row) ([]int, bool) {
	idx := r.findIndexLocked(cols)
	if idx == nil {
		return nil, false
	}
	pb := probePool.Get().(*probeBuf)
	defer probePool.Put(pb)
	// The index stores keys in idx.Cols order; reorder the probe key to
	// match when the caller's column order differs.
	pb.probe = pb.probe[:0]
	for _, c := range idx.Cols {
		found := false
		for j, cc := range cols {
			if cc == c {
				pb.probe = append(pb.probe, key[j])
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	// SQL equality never matches NULL.
	for _, d := range pb.probe {
		if d.IsNull() {
			return nil, true
		}
	}
	pb.key = datum.AppendKey(pb.key[:0], pb.probe)
	return idx.buckets[string(pb.key)], true
}

// findIndexLocked matches cols against an index as a set, without
// allocating (Lookup is the executor's per-outer-row hot path).
func (r *Relation) findIndexLocked(cols []int) *HashIndex {
	for _, idx := range r.indexes {
		if len(idx.Cols) != len(cols) {
			continue
		}
		match := true
		for _, c := range cols {
			found := false
			for _, ic := range idx.Cols {
				if ic == c {
					found = true
					break
				}
			}
			if !found {
				match = false
				break
			}
		}
		if match {
			return idx
		}
	}
	return nil
}

// Store maps table names to relations. Safe for concurrent use. All
// relations of one store share one intern table, so equal strings in
// different tables carry the same id — which is what lets the executor
// join and compare string columns across tables on ids alone. The table
// has store (catalog) lifetime: it survives catalog epoch bumps, only ever
// grows, and ids stay stable once assigned.
type Store struct {
	mu   sync.RWMutex
	rels map[string]*Relation
	tab  *vec.Intern
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{rels: make(map[string]*Relation), tab: vec.NewIntern()}
}

// Intern returns the store-wide string intern table.
func (s *Store) Intern() *vec.Intern { return s.tab }

// Create allocates storage for a table, sharing the store's intern table.
func (s *Store) Create(meta *catalog.Table) *Relation {
	r := NewRelation(meta)
	r.tab = s.tab
	s.mu.Lock()
	s.rels[lower(meta.Name)] = r
	s.mu.Unlock()
	return r
}

// Relation resolves a relation by table name.
func (s *Store) Relation(name string) (*Relation, bool) {
	s.mu.RLock()
	r, ok := s.rels[lower(name)]
	s.mu.RUnlock()
	return r, ok
}

// Drop releases a table's storage. Dropping an unknown table is a no-op.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	delete(s.rels, lower(name))
	s.mu.Unlock()
}

// compactMinStrings is the intern-table size below which compaction is never
// attempted: rebuild bookkeeping on a small table costs more than the bytes
// it could reclaim.
const compactMinStrings = 1024

// MaybeCompactIntern rebuilds the store-wide string intern table when most
// of it is garbage — strings whose every referencing row was deleted or
// whose table was dropped. The intern table is append-only (ids must stay
// stable while any reader can hold them), so on a long-lived server DELETE
// and DROP TABLE would otherwise grow it without bound; rebuild-on-threshold
// bounds it at 2× the live set.
//
// Compaction walks every relation's string columns to find live ids, and
// fires only when the table holds at least compactMinStrings entries and
// more than half are dead. It re-interns the live strings into a fresh table
// (dense new ids) and rewrites every relation's ID columns onto fresh
// backing arrays, leaving previously taken snapshots consistent with the old
// table they captured.
//
// Compaction is safe against concurrent readers and writers: it holds the
// store lock (excluding new views, whose eager capture needs it) plus every
// relation's write lock for the whole mark→rebuild→swap, so no append can
// intern into the table being retired and no scan can capture a relation
// mid-swap. Mark-live walks every stored version — dead, aborted, and
// uncommitted included — so ids referenced by old versions still visible to
// a live snapshot survive; views captured earlier keep the old table and
// old ID arrays, both of which compaction leaves intact, so running scans
// stay consistent. It reports whether a rebuild happened.
func (s *Store) MaybeCompactIntern() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	strs := s.tab.Strs()
	total := len(strs)
	if total < compactMinStrings {
		return false
	}
	// Lock every relation for the duration: marking and rewriting must see
	// one frozen id space. Sorted order keeps multi-lock acquisition
	// deterministic.
	names := make([]string, 0, len(s.rels))
	for name := range s.rels {
		names = append(names, name)
	}
	sort.Strings(names)
	rels := make([]*Relation, len(names))
	for i, name := range names {
		rels[i] = s.rels[name]
		rels[i].mu.Lock()
	}
	defer func() {
		for _, r := range rels {
			r.mu.Unlock()
		}
	}()
	live := make([]bool, total)
	nLive := 0
	for _, r := range rels {
		for ci := range r.cols {
			c := &r.cols[ci]
			if c.T != datum.TString {
				continue
			}
			for i, id := range c.IDs {
				if !c.Nulls[i] && !live[id] {
					live[id] = true
					nLive++
				}
			}
		}
	}
	if 2*nLive > total {
		return false
	}
	ntab := vec.NewIntern()
	remap := make([]uint32, total)
	for id, ok := range live {
		if ok {
			remap[id] = ntab.Intern(strs[id])
		}
	}
	for _, r := range rels {
		for ci := range r.cols {
			c := &r.cols[ci]
			if c.T != datum.TString || len(c.IDs) == 0 {
				continue
			}
			nids := make([]uint32, len(c.IDs))
			for i, id := range c.IDs {
				if !c.Nulls[i] {
					nids[i] = remap[id]
				}
			}
			c.IDs = nids
		}
		r.tab = ntab
	}
	s.tab = ntab
	return true
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
