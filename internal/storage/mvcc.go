// MVCC: every stored row is a version stamped with a begin and an end
// timestamp. Committed timestamps come from the engine's global commit
// clock; versions written by an in-flight transaction carry the writer's
// transaction id (TxnIDBit set) until commit rewrites them to the commit
// timestamp, or rollback retires them. Readers never take more than the
// relation's shared read lock, and only long enough to capture the
// append-only backing arrays — a snapshot read never blocks a writer and a
// writer never blocks a snapshot read.
//
// The write protocol is first-updater-wins: DELETE (and the delete half of
// UPDATE) claims a version by CAS-ing its end stamp from Live to the
// transaction id. A failed CAS means another transaction — committed or
// still in flight — already deleted that version, and the statement fails
// with ErrConflict immediately rather than waiting.
//
// Safety of stale captures: a reader captures the rows/begins/ends slice
// headers under the read lock and then reads stamps with atomic loads. A
// concurrent commit may rewrite a stamp in the relation's *current* arrays
// after the reader captured an older backing array (appends reallocate).
// Either value gives the same answer: the commit's timestamp is greater
// than the reader's snapshot timestamp (the commit happened after the
// snapshot was taken), so the version is invisible whether the reader sees
// the in-flight marker or the final stamp, and a deleted end stamp greater
// than the snapshot still reads as visible, exactly as Live would.
package storage

import (
	"errors"
	"sync"
	"sync/atomic"

	"starmagic/internal/catalog"
	"starmagic/internal/datum"
	"starmagic/internal/vec"
)

const (
	// TxnIDBit distinguishes in-flight transaction ids from committed
	// timestamps in begin/end stamps. Transaction ids are TxnIDBit|seq.
	TxnIDBit = uint64(1) << 63

	// Live is the end stamp of a version that has not been deleted.
	Live = ^uint64(0)

	// abortedBegin marks a version whose inserting transaction rolled
	// back. It has TxnIDBit set but can never equal a real transaction id
	// (ids are TxnIDBit|seq with seq well below 2^63-1), so it is
	// invisible to every snapshot including the writer's own.
	abortedBegin = ^uint64(0)

	// ReadAllTS is the largest valid snapshot timestamp: a snapshot at
	// ReadAllTS sees every committed, undeleted version.
	ReadAllTS = TxnIDBit - 1
)

// ErrConflict reports a first-updater-wins write-write conflict: the version
// a DELETE or UPDATE tried to claim was already claimed or deleted by
// another transaction.
var ErrConflict = errors.New("write-write conflict")

// Snap is a snapshot: a commit-timestamp horizon plus the reading
// transaction's own id (zero for pure readers), so a transaction sees its
// own uncommitted writes.
type Snap struct {
	TS   uint64 // sees versions committed at or before TS
	Self uint64 // this transaction's id, or 0
}

// ReadAll is the snapshot that sees every committed, undeleted version.
var ReadAll = Snap{TS: ReadAllTS}

// Visible reports whether a version with the given begin/end stamps is in
// the snapshot.
func (s Snap) Visible(begin, end uint64) bool {
	if begin&TxnIDBit != 0 {
		// In-flight insert (or aborted): visible only to its writer.
		if begin != s.Self {
			return false
		}
	} else if begin > s.TS {
		return false // committed after the snapshot
	}
	if end == Live {
		return true
	}
	if end&TxnIDBit != 0 {
		// In-flight delete: gone for its writer, still visible to others.
		return end != s.Self
	}
	return end > s.TS // committed delete: visible iff it happened after us
}

// maxU64 atomically raises *p to at least v.
func maxU64(p *atomic.Uint64, v uint64) {
	for {
		cur := p.Load()
		if cur >= v || p.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Append adds a row version with the given begin stamp (a commit timestamp
// for already-committed loads, or a transaction id for in-flight inserts)
// and returns its position. The position stays valid until the version is
// resolved: vacuum never touches a relation with unresolved markers.
func (r *Relation) Append(row datum.Row, begin uint64) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appendLocked(row, begin)
}

// DeleteWhere scans the versions visible to s, and claims every one
// matching pred for deletion by txnID. onMark is called (still under the
// read lock, so it must not touch the relation or block) for each claimed
// position so the caller can record it in a write set — including claims
// made before a conflict aborts the scan, which the caller must then roll
// back. Running the whole scan-and-claim under one read lock is what keeps
// the claimed positions valid: vacuum needs the write lock, so it cannot
// reshuffle positions mid-scan, and afterwards the unresolved markers keep
// it away.
func (r *Relation) DeleteWhere(s Snap, txnID uint64, pred func(datum.Row) (bool, error), onMark func(pos int, row datum.Row)) (int64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var n int64
	for pos := range r.rows {
		if !s.Visible(atomic.LoadUint64(&r.begins[pos]), atomic.LoadUint64(&r.ends[pos])) {
			continue
		}
		match, err := pred(r.rows[pos])
		if err != nil {
			return n, err
		}
		if !match {
			continue
		}
		if !atomic.CompareAndSwapUint64(&r.ends[pos], Live, txnID) {
			return n, ErrConflict
		}
		r.dirty.Add(1)
		r.inflight.Add(1)
		onMark(pos, r.rows[pos])
		n++
	}
	return n, nil
}

// FinishAppend commits an in-flight insert at position pos with commit
// timestamp ts.
func (r *Relation) FinishAppend(pos int, ts uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	atomic.StoreUint64(&r.begins[pos], ts)
	// Raise maxBegin before releasing the dirty count: a reader that
	// observes dirty==0 must also observe this version's begin stamp in
	// maxBegin, or its zero-copy fast path would leak the version into
	// older snapshots.
	maxU64(&r.maxBegin, ts)
	r.dirty.Add(-1)
	r.inflight.Add(-1)
}

// AbortAppend retires an in-flight insert: the version becomes invisible to
// every snapshot and is reclaimed by the next vacuum.
func (r *Relation) AbortAppend(pos int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	atomic.StoreUint64(&r.begins[pos], abortedBegin)
	r.inflight.Add(-1)
}

// FinishDelete commits an in-flight delete at position pos with commit
// timestamp ts.
func (r *Relation) FinishDelete(pos int, ts uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	atomic.StoreUint64(&r.ends[pos], ts)
	r.inflight.Add(-1)
}

// AbortDelete releases a claimed delete, restoring the version to Live.
func (r *Relation) AbortDelete(pos int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	atomic.StoreUint64(&r.ends[pos], Live)
	r.dirty.Add(-1)
	r.inflight.Add(-1)
}

// relCapture is one relation's state captured under the read lock: the
// append-only backing arrays plus the version count. Entries [0, n) of the
// captured arrays never change except for stamp resolution, which is
// benign (see the package comment on stale captures).
type relCapture struct {
	n      int
	rows   []datum.Row
	begins []uint64
	ends   []uint64
	cols   []vec.Col
	tab    *vec.Intern
	all    bool // every version in [0, n) is visible to the capturing snapshot
}

// capture snapshots the relation's backing arrays for snapshot s. The
// ordering of the two atomic loads against FinishAppend's stores is what
// makes the fast path sound: dirty is loaded first, so observing dirty==0
// guarantees every committed begin stamp is already reflected in maxBegin.
func (r *Relation) capture(s Snap, withCols bool) relCapture {
	r.mu.RLock()
	c := relCapture{n: len(r.rows), rows: r.rows, begins: r.begins, ends: r.ends, tab: r.tab}
	if withCols {
		c.cols = make([]vec.Col, len(r.cols))
		copy(c.cols, r.cols)
	}
	dirty := r.dirty.Load()
	mb := r.maxBegin.Load()
	r.mu.RUnlock()
	c.all = dirty == 0 && mb <= s.TS
	return c
}

// visibleRows gathers the rows of c visible to s; zero-copy when every
// version qualifies.
func (c *relCapture) visibleRows(s Snap) []datum.Row {
	if c.all {
		return c.rows[:c.n:c.n]
	}
	out := make([]datum.Row, 0, c.n)
	for i := 0; i < c.n; i++ {
		if s.Visible(atomic.LoadUint64(&c.begins[i]), atomic.LoadUint64(&c.ends[i])) {
			out = append(out, c.rows[i])
		}
	}
	return out
}

// visibleSel builds the ascending selection of version positions visible
// to s, or nil when every version is (the vectorized scan then drives
// straight over [0, N) with no indirection).
func (c *relCapture) visibleSel(s Snap) []int32 {
	if c.all {
		return nil
	}
	out := make([]int32, 0, c.n)
	for i := 0; i < c.n; i++ {
		if s.Visible(atomic.LoadUint64(&c.begins[i]), atomic.LoadUint64(&c.ends[i])) {
			out = append(out, int32(i))
		}
	}
	return out
}

// LookupSnap is Lookup filtered to the versions visible to s. It probes the
// relation's current index — positions found and rows fetched under the
// same read lock, so vacuum cannot move them mid-probe — and the returned
// rows carry their strings inline, immune to intern compaction.
func (r *Relation) LookupSnap(cols []int, key datum.Row, s Snap) ([]datum.Row, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	positions, ok := r.probeLocked(cols, key)
	if !ok {
		return nil, false
	}
	var out []datum.Row
	for _, pos := range positions {
		if s.Visible(atomic.LoadUint64(&r.begins[pos]), atomic.LoadUint64(&r.ends[pos])) {
			out = append(out, r.rows[pos])
		}
	}
	return out, true
}

// AddIndex builds a hash index over cols in place, covering every stored
// version (dead versions are filtered at lookup by visibility). The new
// index serves probes as soon as the write lock releases.
func (r *Relation) AddIndex(cols []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := &HashIndex{
		Cols:    append([]int(nil), cols...),
		buckets: make(map[string][]int),
	}
	for pos, row := range r.rows {
		r.keyBuf = datum.AppendKeyOf(r.keyBuf[:0], row, idx.Cols)
		k := string(r.keyBuf)
		idx.buckets[k] = append(idx.buckets[k], pos)
	}
	r.indexes = append(r.indexes, idx)
}

// Vacuum drops versions no snapshot at or after horizon can see: aborted
// inserts and versions whose delete committed at or before the horizon. A
// relation with unresolved transaction markers is skipped entirely —
// in-flight write sets hold positions into the current arrays, and those
// positions must stay stable. Returns the number of versions reclaimed.
// Captures taken before the vacuum keep reading the old arrays and stay
// consistent.
func (r *Relation) Vacuum(horizon uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inflight.Load() != 0 {
		return 0
	}
	removable := func(pos int) bool {
		b, e := r.begins[pos], r.ends[pos]
		if b == abortedBegin {
			return true
		}
		return e != Live && e&TxnIDBit == 0 && e <= horizon
	}
	dead := 0
	for pos := range r.rows {
		if removable(pos) {
			dead++
		}
	}
	if dead == 0 {
		return 0
	}
	n := len(r.rows) - dead
	rows := make([]datum.Row, 0, n)
	begins := make([]uint64, 0, n)
	ends := make([]uint64, 0, n)
	cols := newCols(r.Meta)
	indexes := newIndexes(r.Meta)
	for _, idx := range r.indexes { // preserve indexes added after create
		if r.findIndexIn(indexes, idx.Cols) == nil {
			indexes = append(indexes, &HashIndex{
				Cols:    append([]int(nil), idx.Cols...),
				buckets: make(map[string][]int),
			})
		}
	}
	var dirty int64
	var maxBegin uint64
	for pos, row := range r.rows {
		if removable(pos) {
			continue
		}
		p := len(rows)
		rows = append(rows, row)
		begins = append(begins, r.begins[pos])
		ends = append(ends, r.ends[pos])
		for i, d := range row {
			cols[i].Append(d, r.tab)
		}
		for _, idx := range indexes {
			r.keyBuf = datum.AppendKeyOf(r.keyBuf[:0], row, idx.Cols)
			k := string(r.keyBuf)
			idx.buckets[k] = append(idx.buckets[k], p)
		}
		if r.ends[pos] != Live {
			dirty++
		}
		if b := r.begins[pos]; b&TxnIDBit == 0 && b > maxBegin {
			maxBegin = b
		}
	}
	r.rows, r.begins, r.ends, r.cols, r.indexes = rows, begins, ends, cols, indexes
	r.dirty.Store(dirty)
	r.maxBegin.Store(maxBegin)
	return dead
}

// findIndexIn matches cols against idxs as a set (AddIndex may have added
// an index whose column set duplicates a declared one).
func (r *Relation) findIndexIn(idxs []*HashIndex, cols []int) *HashIndex {
	for _, idx := range idxs {
		if len(idx.Cols) != len(cols) {
			continue
		}
		match := true
		for _, c := range cols {
			found := false
			for _, ic := range idx.Cols {
				if ic == c {
					found = true
					break
				}
			}
			if !found {
				match = false
				break
			}
		}
		if match {
			return idx
		}
	}
	return nil
}

// Garbage estimates the number of reclaimable versions (dead or aborted,
// minus in-flight markers that will resolve either way).
func (r *Relation) Garbage() int64 {
	g := r.dirty.Load() - r.inflight.Load()
	if g < 0 {
		return 0
	}
	return g
}

// Vacuum reclaims dead versions across every relation. horizon must not
// exceed the oldest live snapshot's timestamp.
func (s *Store) Vacuum(horizon uint64) int {
	s.mu.RLock()
	rels := make([]*Relation, 0, len(s.rels))
	for _, r := range s.rels {
		rels = append(rels, r)
	}
	s.mu.RUnlock()
	total := 0
	for _, r := range rels {
		total += r.Vacuum(horizon)
	}
	return total
}

// View is the storage a single query (or transaction) reads: one snapshot,
// with every relation's backing arrays captured eagerly and atomically
// (under the store lock, which intern compaction excludes), so all captured
// relations resolve strings through the same intern table and cross-table
// id comparisons stay sound even if compaction runs mid-query.
type View struct {
	store *Store
	snap  Snap

	mu   sync.RWMutex
	rels map[string]*RelView
}

// NewView captures every relation for snapshot s. The capture is cheap —
// slice headers and a column-descriptor copy per relation, no row copying.
func (s *Store) NewView(snap Snap) *View {
	v := &View{store: s, snap: snap}
	v.captureAll()
	return v
}

// LiveView returns a lazy view at ReadAll: relations are captured on first
// access. It serves direct evaluator use (tests, benchmarks) where no
// transactions or compaction run concurrently; engine queries use eager
// NewView snapshots.
func (s *Store) LiveView() *View {
	return &View{store: s, snap: ReadAll, rels: make(map[string]*RelView)}
}

func (v *View) captureAll() {
	v.store.mu.RLock()
	rels := make(map[string]*RelView, len(v.store.rels))
	for name, r := range v.store.rels {
		rels[name] = newRelView(r, v.snap)
	}
	v.store.mu.RUnlock()
	v.mu.Lock()
	v.rels = rels
	v.mu.Unlock()
}

// Snap returns the view's snapshot.
func (v *View) Snap() Snap { return v.snap }

// Relation resolves a captured relation view by table name, capturing on
// demand for relations created after the view (DDL is serialized against
// query prepare, so this only serves lazy views and benign races).
func (v *View) Relation(name string) (*RelView, bool) {
	key := lower(name)
	v.mu.RLock()
	rv, ok := v.rels[key]
	v.mu.RUnlock()
	if ok {
		return rv, true
	}
	r, ok := v.store.Relation(name)
	if !ok {
		return nil, false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if rv, ok := v.rels[key]; ok {
		return rv, true
	}
	rv = newRelView(r, v.snap)
	v.rels[key] = rv
	return rv, true
}

// Refresh re-captures every relation at the same snapshot. A transaction
// calls it after each DML statement so later statements see the
// transaction's own writes (Self-stamped versions appended after the
// previous capture).
func (v *View) Refresh() {
	v.captureAll()
}

// RelView is one relation as seen through a view's snapshot. Visibility
// gathers (row slice, vectorized selection) are computed once on first use
// and memoized; the zero-copy fast path skips them entirely when every
// captured version is visible. Safe for concurrent use by parallel
// evaluator workers.
type RelView struct {
	Meta *catalog.Table
	rel  *Relation
	snap Snap
	cap  relCapture

	mu       sync.Mutex
	visRows  []datum.Row
	rowsDone bool
	vis      []int32
	visDone  bool
}

func newRelView(r *Relation, snap Snap) *RelView {
	return &RelView{Meta: r.Meta, rel: r, snap: snap, cap: r.capture(snap, true)}
}

// Rows returns the rows visible to the view's snapshot. Zero-copy when the
// whole captured prefix is visible; otherwise gathered once and memoized.
func (rv *RelView) Rows() []datum.Row {
	if rv.cap.all {
		return rv.cap.rows[:rv.cap.n:rv.cap.n]
	}
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if !rv.rowsDone {
		rv.visRows = rv.cap.visibleRows(rv.snap)
		rv.rowsDone = true
	}
	return rv.visRows
}

// Len returns the number of visible rows.
func (rv *RelView) Len() int {
	if rv.cap.all {
		return rv.cap.n
	}
	return len(rv.Rows())
}

// Vec returns the zero-copy columnar capture, the aligned row slice, the
// visibility selection (nil when every version in [0, N) is visible), and
// the intern table the ID columns resolve through.
func (rv *RelView) Vec() (vec.Table, []datum.Row, []int32, *vec.Intern) {
	t := vec.Table{N: rv.cap.n, Cols: rv.cap.cols}
	if rv.cap.all {
		return t, rv.cap.rows, nil, rv.cap.tab
	}
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if !rv.visDone {
		rv.vis = rv.cap.visibleSel(rv.snap)
		rv.visDone = true
	}
	return t, rv.cap.rows, rv.vis, rv.cap.tab
}

// Intern returns the intern table captured with the relation.
func (rv *RelView) Intern() *vec.Intern { return rv.cap.tab }

// Lookup probes the relation's index, filtered to the view's snapshot. The
// boolean reports whether an index over exactly cols was available.
func (rv *RelView) Lookup(cols []int, key datum.Row) ([]datum.Row, bool) {
	return rv.rel.LookupSnap(cols, key, rv.snap)
}
