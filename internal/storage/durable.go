// Durability hooks: the accessors the engine's WAL integration needs to
// log commits, stream checkpoint images, and rebuild versions at recovery.
// They follow the same locking rules as the rest of the MVCC layer — stamp
// loads are atomic, captures pin the append-only backing arrays.
package storage

import (
	"sync/atomic"

	"starmagic/internal/datum"
)

// VersionData returns the stored row and current begin stamp of the version
// at pos. The commit path logs the stored row (post type-widening), so
// recovery re-appends byte-identical values.
func (r *Relation) VersionData(pos int) (datum.Row, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rows[pos], atomic.LoadUint64(&r.begins[pos])
}

// DumpVisible streams the versions visible to snapshot s, with their begin
// stamps, in position order. The backing arrays are captured under the read
// lock and iterated outside it, so a checkpoint can stream a large relation
// to disk without blocking writers; versions committed after the capture
// are invisible to s and versions s can see are never vacuumed while the
// engine holds s registered, so the dump is exact.
func (r *Relation) DumpVisible(s Snap, fn func(row datum.Row, begin uint64) error) error {
	c := r.capture(s, false)
	for i := 0; i < c.n; i++ {
		b := atomic.LoadUint64(&c.begins[i])
		e := atomic.LoadUint64(&c.ends[i])
		if !s.Visible(b, e) {
			continue
		}
		if err := fn(c.rows[i], b); err != nil {
			return err
		}
	}
	return nil
}

// RecoverVersions iterates every stored version with its stamps. Recovery
// uses it to build the (begin stamp, row) → position map that resolves
// logged deletes; it runs single-threaded before the database is published,
// but takes the read lock anyway to keep the -race picture clean.
func (r *Relation) RecoverVersions(fn func(pos int, row datum.Row, begin, end uint64)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for pos, row := range r.rows {
		fn(pos, row, atomic.LoadUint64(&r.begins[pos]), atomic.LoadUint64(&r.ends[pos]))
	}
}

// RecoverSetEnd re-applies a committed delete during recovery: the version
// at pos gets end stamp ts, and the dirty count rises so visibility checks
// and vacuum account for it. Unlike FinishDelete it does not touch the
// in-flight count — recovered deletes were committed, never staged.
func (r *Relation) RecoverSetEnd(pos int, ts uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	atomic.StoreUint64(&r.ends[pos], ts)
	r.dirty.Add(1)
}
