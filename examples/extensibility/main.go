// Extensibility: teaching EMST about a new operation, the paper's §5.
//
// A Starburst "database customizer" can add a new box kind; for it to
// participate in the magic-sets transformation they state one property —
// whether the box accepts a magic quantifier with join semantics (AMQ) or
// can only pass restrictions into its inputs (NMQ) — plus the usual
// predicate-pushdown behavior and an evaluator. The paper's example of a
// prospective extension is the outer join, so that is what we add here:
//
//   - a LEFT OUTER JOIN box kind (NMQ: inserting a magic quantifier with
//     plain join semantics would cancel the NULL-extension, but a
//     restriction on an outer-side column may pass into the outer input);
//   - its executor;
//   - its NMQ mapping for EMST.
//
// The example then builds a query over the new box by hand (the SQL front
// end predates the extension, exactly like a customizer's situation),
// runs the full three-phase pipeline, and shows magic restricting the
// outer side of the outer join.
//
// Run with: go run ./examples/extensibility
package main

import (
	"fmt"
	"log"

	"starmagic/internal/catalog"
	"starmagic/internal/core"
	"starmagic/internal/datum"
	"starmagic/internal/exec"
	"starmagic/internal/opt"
	"starmagic/internal/qgm"
	"starmagic/internal/storage"
)

// KindLeftOuterJoin is our extension box kind: two ForEach quantifiers
// (outer side first), Preds holding the ON condition, Output = outer
// columns followed by inner columns (NULL-extended on no match).
const KindLeftOuterJoin = qgm.KindExtensionStart + 1

func registerOuterJoin() {
	// 1. The evaluator.
	exec.RegisterKind(KindLeftOuterJoin, evalLeftOuterJoin)

	// 2. The EMST property (§4.2): NMQ, with restrictions on outer-side
	// output ordinals passed into the outer input. A predicate on the
	// inner (NULL-extended) side must NOT pass down: it would have to
	// filter NULL-extended rows, which the input never produces.
	core.RegisterBoxKind(KindLeftOuterJoin, false, func(b *qgm.Box, boxOrd int) []core.QuantBinding {
		outerQ := b.Quantifiers[0]
		if boxOrd < len(outerQ.Ranges.Output) {
			return []core.QuantBinding{{Quant: outerQ, ChildOrd: boxOrd}}
		}
		return nil
	})
}

// evalLeftOuterJoin is a straightforward nested-loop left outer join.
func evalLeftOuterJoin(ev *exec.Evaluator, b *qgm.Box, env exec.Env) ([]datum.Row, error) {
	outerQ, innerQ := b.Quantifiers[0], b.Quantifiers[1]
	outerRows, err := ev.EvalBox(outerQ.Ranges, env)
	if err != nil {
		return nil, err
	}
	innerRows, err := ev.EvalBox(innerQ.Ranges, env)
	if err != nil {
		return nil, err
	}
	nInner := len(innerQ.Ranges.Output)
	var out []datum.Row
	cur := exec.Env{}
	for k, v := range env {
		cur[k] = v
	}
	for _, orow := range outerRows {
		cur[outerQ] = orow
		matched := false
		for _, irow := range innerRows {
			cur[innerQ] = irow
			ok := true
			for _, p := range b.Preds {
				tv, err := exec.EvalPred(p, cur)
				if err != nil {
					return nil, err
				}
				if tv != datum.True {
					ok = false
					break
				}
			}
			if ok {
				matched = true
				out = append(out, append(orow.Clone(), irow...))
			}
		}
		delete(cur, innerQ)
		if !matched {
			row := orow.Clone()
			for i := 0; i < nInner; i++ {
				row = append(row, datum.NullOf(innerQ.Ranges.Output[i].Type))
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func main() {
	registerOuterJoin()

	// Schema: employees (the outer side, via a view so there is something
	// for magic to restrict) LEFT OUTER JOIN parking spots.
	cat := catalog.New()
	emp := &catalog.Table{
		Name: "employee",
		Columns: []catalog.Column{
			{Name: "empno", Type: datum.TInt},
			{Name: "workdept", Type: datum.TInt},
			{Name: "salary", Type: datum.TFloat},
		},
		Keys:    [][]int{{0}},
		Indexes: [][]int{{0}, {1}},
	}
	spot := &catalog.Table{
		Name: "parking",
		Columns: []catalog.Column{
			{Name: "empno", Type: datum.TInt},
			{Name: "lot", Type: datum.TString},
		},
		Keys: [][]int{{0}},
	}
	if err := cat.AddTable(emp); err != nil {
		log.Fatal(err)
	}
	if err := cat.AddTable(spot); err != nil {
		log.Fatal(err)
	}
	store := storage.NewStore()
	er := store.Create(emp)
	pr := store.Create(spot)
	for d := 1; d <= 40; d++ {
		for i := 1; i <= 25; i++ {
			empno := int64(d*100 + i)
			must(er.Insert(datum.Row{
				datum.Int(empno), datum.Int(int64(d)), datum.Float(float64(1000 + empno%700)),
			}))
			if empno%3 == 0 {
				must(pr.Insert(datum.Row{datum.Int(empno), datum.String(fmt.Sprintf("lot%d", empno%5))}))
			}
		}
	}
	catalog.AnalyzeTable(emp, er.Rows())
	catalog.AnalyzeTable(spot, pr.Rows())

	// Build the QGM by hand (the SQL grammar has no OUTER JOIN — the point
	// of the exercise): top select filters workdept = 7 over the outer-join
	// box of employee x parking.
	g := qgm.NewGraph()
	empBox := baseBox(g, emp)
	spotBox := baseBox(g, spot)

	oj := g.NewBox(KindLeftOuterJoin, "EMP_LOJ_PARKING")
	eq := g.AddQuantifier(oj, qgm.ForEach, "e", empBox)
	pq := g.AddQuantifier(oj, qgm.ForEach, "p", spotBox)
	oj.Preds = []qgm.Expr{&qgm.Cmp{Op: datum.EQ, L: eq.Col(0), R: pq.Col(0)}}
	for i, oc := range empBox.Output {
		oj.Output = append(oj.Output, qgm.OutputCol{Name: oc.Name, Expr: eq.Col(i), Type: oc.Type})
	}
	for i, oc := range spotBox.Output {
		oj.Output = append(oj.Output, qgm.OutputCol{Name: "p_" + oc.Name, Expr: pq.Col(i), Type: oc.Type})
	}

	// Wrap the employee side in a filtering view (employees with salary > 1005) so
	// EMST has a box to adorn and restrict; an identity wrapper would be
	// removed by the trivial-select cleanup before EMST ever saw it.
	view := g.NewBox(qgm.KindSelect, "WELLPAID")
	vq := g.AddQuantifier(view, qgm.ForEach, "e", empBox)
	view.Preds = []qgm.Expr{&qgm.Cmp{Op: datum.GT, L: vq.Col(2), R: &qgm.Const{Val: datum.Float(1005)}}}
	for i, oc := range empBox.Output {
		view.Output = append(view.Output, qgm.OutputCol{Name: oc.Name, Expr: vq.Col(i), Type: oc.Type})
	}
	eq.Ranges = view

	top := g.NewBox(qgm.KindSelect, "QUERY")
	dq := g.AddQuantifier(top, qgm.ForEach, "dept7", mkDeptFilterBox(g, empBox))
	jq := g.AddQuantifier(top, qgm.ForEach, "j", oj)
	top.Preds = []qgm.Expr{&qgm.Cmp{Op: datum.EQ, L: dq.Col(0), R: jq.Col(1)}}
	top.Output = []qgm.OutputCol{
		{Name: "empno", Expr: jq.Col(0), Type: datum.TInt},
		{Name: "lot", Expr: jq.Col(4), Type: datum.TString},
	}
	g.Top = top
	g.Limit = -1
	if err := g.Check(); err != nil {
		log.Fatal(err)
	}

	// Reference result before optimization.
	ref := g.CloneGraph()
	refRows, err := exec.New(store).EvalGraph(ref)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Optimize(g, core.Options{Snapshots: true, Validate: true})
	if err != nil {
		log.Fatal(err)
	}
	opt.Optimize(res.Graph)
	ev := exec.New(store)
	rows, err := ev.EvalGraph(res.Graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows: %d (reference %d)\n", len(rows), len(refRows))
	fmt.Printf("EMST plan used: %v, cost %.0f -> %.0f\n", res.UsedEMST, res.CostBefore, res.CostAfter)

	for _, s := range res.Snapshots {
		if s.Name == "phase2" {
			fmt.Println("\n--- phase 2 graph (magic descended into the outer-join's outer side) ---")
			fmt.Print(s.Dump)
		}
	}
	if len(rows) != len(refRows) {
		log.Fatalf("MISMATCH: optimized plan returned %d rows, reference %d", len(rows), len(refRows))
	}
	fmt.Println("\nresults match the unoptimized reference — the extension participates in EMST")
}

// mkDeptFilterBox builds SELECT DISTINCT workdept FROM employee WHERE
// workdept = 7 — a tiny driver table supplying the binding.
func mkDeptFilterBox(g *qgm.Graph, empBox *qgm.Box) *qgm.Box {
	b := g.NewBox(qgm.KindSelect, "DEPT7")
	q := g.AddQuantifier(b, qgm.ForEach, "e", empBox)
	b.Preds = []qgm.Expr{&qgm.Cmp{Op: datum.EQ, L: q.Col(1), R: &qgm.Const{Val: datum.Int(7)}}}
	b.Output = []qgm.OutputCol{{Name: "workdept", Expr: q.Col(1), Type: datum.TInt}}
	b.Distinct = qgm.DistinctEnforce
	return b
}

func baseBox(g *qgm.Graph, t *catalog.Table) *qgm.Box {
	b := g.NewBox(qgm.KindBaseTable, t.Name)
	b.Table = t
	for _, c := range t.Columns {
		b.Output = append(b.Output, qgm.OutputCol{Name: c.Name, Type: c.Type})
	}
	return b
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
