// TPC-D-flavored decision support. The paper's conclusions point directly
// at this workload: "much effort has been spent to optimize TPCD benchmark
// queries by hand in order to achieve better performance. The magic-sets
// transformation provides an opportunity to optimize decision support
// queries in a stable manner."
//
// This example loads a miniature TPC-D-like schema (region → nation →
// customer/supplier → orders → lineitem), defines summary views the way
// analysts do (revenue per customer, volume per nation), and runs three
// hand-written decision-support queries under Original / Correlated / EMST.
// Magic pushes the region/nation filters through the summary views instead
// of materializing them for the whole world — no hand-optimization needed.
//
// Run with: go run ./examples/tpcd
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"starmagic"
)

const schema = `
CREATE TABLE region (regionkey INT, rname VARCHAR(20), PRIMARY KEY (regionkey));
CREATE TABLE nation (nationkey INT, nname VARCHAR(20), regionkey INT, PRIMARY KEY (nationkey));
CREATE TABLE customer (custkey INT, cname VARCHAR(20), nationkey INT, acctbal FLOAT, PRIMARY KEY (custkey));
CREATE INDEX cust_nation ON customer (nationkey);
CREATE TABLE orders (orderkey INT, custkey INT, odate INT, PRIMARY KEY (orderkey));
CREATE INDEX ord_cust ON orders (custkey);
CREATE TABLE lineitem (orderkey INT, linenumber INT, qty FLOAT, price FLOAT, discount FLOAT,
  PRIMARY KEY (orderkey, linenumber));
CREATE INDEX li_order ON lineitem (orderkey);

-- Revenue per order (sum of discounted line prices).
CREATE VIEW orderRevenue (orderkey, revenue) AS
  SELECT orderkey, SUM(price * (1 - discount)) FROM lineitem GROUPBY orderkey;

-- Revenue per customer, built on the view above.
CREATE VIEW custRevenue (custkey, revenue, norders) AS
  SELECT o.custkey, SUM(v.revenue), COUNT(*)
  FROM orders o, orderRevenue v WHERE o.orderkey = v.orderkey
  GROUPBY o.custkey;

-- Revenue per nation, another level up.
CREATE VIEW nationRevenue (nationkey, revenue) AS
  SELECT c.nationkey, SUM(v.revenue)
  FROM customer c, custRevenue v WHERE c.custkey = v.custkey
  GROUPBY c.nationkey;
`

func main() {
	db := starmagic.Open()
	db.MustExec(schema)
	load(db)

	queries := []struct{ name, sql string }{
		{
			name: "Q1: big customers of one nation",
			sql: `SELECT c.cname, v.revenue, v.norders
			      FROM nation n, customer c, custRevenue v
			      WHERE n.nname = 'FRANCE' AND c.nationkey = n.nationkey
			        AND c.custkey = v.custkey AND v.revenue > 5000`,
		},
		{
			name: "Q2: revenue of one region's nations",
			sql: `SELECT n.nname, v.revenue
			      FROM region r, nation n, nationRevenue v
			      WHERE r.rname = 'EUROPE' AND n.regionkey = r.regionkey
			        AND n.nationkey = v.nationkey`,
		},
		{
			name: "Q3: orders of customers above their nation's average balance",
			sql: `SELECT c.cname, v.revenue
			      FROM nation n, customer c, custRevenue v
			      WHERE n.nname = 'CHINA' AND c.nationkey = n.nationkey
			        AND c.custkey = v.custkey
			        AND c.acctbal > (SELECT AVG(c2.acctbal) FROM customer c2
			                         WHERE c2.nationkey = c.nationkey)`,
		},
	}

	fmt.Printf("%-55s %10s %12s %10s   rows\n", "query", "Original", "Correlated", "EMST")
	for _, q := range queries {
		var times [3]time.Duration
		var rows int
		for i, s := range []starmagic.Strategy{
			starmagic.StrategyOriginal, starmagic.StrategyCorrelated, starmagic.StrategyEMST,
		} {
			p, err := db.Prepare(q.sql, s)
			if err != nil {
				log.Fatalf("%s: %v", q.name, err)
			}
			best := time.Hour
			for r := 0; r < 3; r++ {
				start := time.Now()
				res, err := p.Execute()
				if err != nil {
					log.Fatalf("%s: %v", q.name, err)
				}
				if d := time.Since(start); d < best {
					best = d
				}
				rows = len(res.Rows)
			}
			times[i] = best
		}
		base := times[0].Seconds()
		fmt.Printf("%-55s %10.2f %12.2f %10.2f   %d\n", q.name,
			100.0, 100*times[1].Seconds()/base, 100*times[2].Seconds()/base, rows)
	}
	fmt.Println("\n(Original = 100; magic pushes the region/nation filter through the")
	fmt.Println(" view stack instead of summarizing every customer on the planet.)")
}

func load(db *starmagic.DB) {
	rng := rand.New(rand.NewSource(7))
	regions := []string{"EUROPE", "ASIA", "AMERICA", "AFRICA", "OCEANIA", "ANTARCTICA"}
	nations := []string{
		"FRANCE", "GERMANY", "ITALY", "CHINA", "JAPAN", "INDIA",
		"BRAZIL", "CANADA", "PERU", "EGYPT", "KENYA", "MOROCCO",
		"AUSTRALIA", "FIJI", "SAMOA", "NORWAY", "SPAIN", "POLAND",
	}

	var rr, nn, cc, oo, ll []starmagic.Row
	for i, r := range regions {
		rr = append(rr, starmagic.Row{starmagic.Int(int64(i)), starmagic.String(r)})
	}
	for i, n := range nations {
		nn = append(nn, starmagic.Row{
			starmagic.Int(int64(i)), starmagic.String(n), starmagic.Int(int64(i % 6)),
		})
	}
	orderkey := int64(0)
	for c := int64(0); c < 1800; c++ {
		cc = append(cc, starmagic.Row{
			starmagic.Int(c),
			starmagic.String(fmt.Sprintf("cust%04d", c)),
			starmagic.Int(c % int64(len(nations))),
			starmagic.Float(float64(rng.Intn(10000)) / 10),
		})
		for o := 0; o < 4; o++ {
			orderkey++
			oo = append(oo, starmagic.Row{
				starmagic.Int(orderkey), starmagic.Int(c), starmagic.Int(int64(1992 + rng.Intn(7))),
			})
			for l := 1; l <= 3; l++ {
				ll = append(ll, starmagic.Row{
					starmagic.Int(orderkey), starmagic.Int(int64(l)),
					starmagic.Float(float64(1 + rng.Intn(50))),
					starmagic.Float(float64(rng.Intn(100000)) / 100),
					starmagic.Float(float64(rng.Intn(10)) / 100),
				})
			}
		}
	}
	must(db.InsertRows("region", rr))
	must(db.InsertRows("nation", nn))
	must(db.InsertRows("customer", cc))
	must(db.InsertRows("orders", oo))
	must(db.InsertRows("lineitem", ll))
	db.Analyze()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
