// Decision-support workload: the stability argument of the paper's Table 1.
//
// Correlated execution — the leading pre-magic technique for complex SQL —
// is fast when few bindings reach a view but collapses when many rows
// re-trigger an expensive view. The magic-sets transformation stays good in
// both regimes, and its cost-comparison guarantee means it never does worse
// than the original plan. This example runs three queries spanning the
// regimes over a sales schema and prints normalized elapsed times exactly
// like the paper's Table 1.
//
// Run with: go run ./examples/decisionsupport
package main

import (
	"fmt"
	"log"
	"time"

	"starmagic"
)

func main() {
	db := starmagic.Open()
	db.MustExec(`
	CREATE TABLE store (storeid INT, city VARCHAR(20), tier INT, PRIMARY KEY (storeid));
	CREATE TABLE receipt (rid INT, storeid INT, total FLOAT, PRIMARY KEY (rid));
	-- NOTE: no index on receipt.storeid: per-binding re-evaluation of the
	-- view below costs a full scan, the regime where correlation collapses.
	CREATE VIEW storeRevenue (storeid, revenue, receipts) AS
	  SELECT storeid, SUM(total), COUNT(*) FROM receipt GROUPBY storeid;
	`)

	var stores, receipts []starmagic.Row
	rid := int64(0)
	for s := 1; s <= 120; s++ {
		stores = append(stores, starmagic.Row{
			starmagic.Int(int64(s)),
			starmagic.String(fmt.Sprintf("City%02d", s%30)),
			starmagic.Int(int64(s % 5)),
		})
		for r := 0; r < 120; r++ {
			rid++
			receipts = append(receipts, starmagic.Row{
				starmagic.Int(rid),
				starmagic.Int(int64(s)),
				starmagic.Float(float64((rid*13)%997) / 10),
			})
		}
	}
	must(db.InsertRows("store", stores))
	must(db.InsertRows("receipt", receipts))
	db.Analyze()

	queries := []struct {
		name, sql, regime string
	}{
		{
			name: "narrow",
			sql: `SELECT s.city, v.revenue FROM store s, storeRevenue v
			      WHERE s.storeid = v.storeid AND s.storeid = 42`,
			regime: "one binding: correlation and magic both excellent",
		},
		{
			name: "several",
			sql: `SELECT s.city, v.revenue FROM store s, storeRevenue v
			      WHERE s.storeid = v.storeid AND s.storeid < 8`,
			regime: "a few bindings x full-scan view: correlation collapses",
		},
		{
			name: "wide",
			sql: `SELECT s.city, v.revenue FROM store s, storeRevenue v
			      WHERE s.storeid = v.storeid AND s.tier = 2`,
			regime: "a quarter of all stores: magic falls back gracefully",
		},
	}

	fmt.Printf("%-9s %12s %12s %12s   (Original = 100)\n", "query", "Original", "Correlated", "EMST")
	for _, q := range queries {
		base := run(db, q.sql, starmagic.StrategyOriginal)
		corr := run(db, q.sql, starmagic.StrategyCorrelated)
		emst := run(db, q.sql, starmagic.StrategyEMST)
		fmt.Printf("%-9s %12.2f %12.2f %12.2f   %s\n", q.name,
			100.0,
			100*corr.Seconds()/base.Seconds(),
			100*emst.Seconds()/base.Seconds(),
			q.regime)
	}
}

// run prepares once and returns the fastest of three executions.
func run(db *starmagic.DB, query string, s starmagic.Strategy) time.Duration {
	p, err := db.Prepare(query, s)
	if err != nil {
		log.Fatal(err)
	}
	best := time.Hour
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := p.Execute(); err != nil {
			log.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
