// Recursion and strata: the paper's §2 stratum numbers and Starburst SQL's
// recursive views in action.
//
// The engine evaluates recursive views (fixpoint iteration with set
// semantics, stratification enforced: aggregation and negation may consume
// the recursion only from a higher stratum) and assigns stratum numbers by
// collapsing strongly connected components, exactly as §2 defines. Magic
// restriction cascades through the nonrecursive strata; recursive
// components evaluate as fixpoint units (magic-on-recursion is out of
// scope — see DESIGN.md).
//
// The example builds a manufacturing bill-of-materials:
//
//  1. a RECURSIVE containment view (which assemblies transitively contain
//     which parts) evaluated to a fixpoint;
//  2. aggregation stacked ON TOP of the completed recursion (stratified);
//  3. stratum numbers for the whole view DAG;
//  4. identical results across Original / Correlated / EMST.
//
// Run with: go run ./examples/recursion
package main

import (
	"fmt"
	"log"
	"sort"

	"starmagic"
	"starmagic/internal/semant"
)

func main() {
	db := starmagic.Open()
	db.MustExec(`
	CREATE TABLE part (partno INT, pname VARCHAR(30), factory INT, unitcost FLOAT, PRIMARY KEY (partno));
	CREATE TABLE component (asmno INT, partno INT, qty INT, PRIMARY KEY (asmno, partno));
	CREATE INDEX comp_asm ON component (asmno);
	CREATE TABLE assembly (asmno INT, aname VARCHAR(30), factory INT, PRIMARY KEY (asmno));
	CREATE TABLE factory (factno INT, city VARCHAR(20), PRIMARY KEY (factno));

	-- Stratum 1: cost of each assembly from its direct parts.
	CREATE VIEW asmCost (asmno, cost) AS
	  SELECT c.asmno, SUM(c.qty * p.unitcost)
	  FROM component c, part p WHERE c.partno = p.partno
	  GROUPBY c.asmno;

	-- Stratum 2: per-factory totals over stratum 1 (aggregation over an
	-- aggregate view).
	CREATE VIEW factoryCost (factno, total, assemblies) AS
	  SELECT a.factory, SUM(v.cost), COUNT(*)
	  FROM assembly a, asmCost v WHERE a.asmno = v.asmno
	  GROUPBY a.factory;

	-- Stratum 3: factories whose total exceeds the all-factory average —
	-- an aggregate of stratum 2 inside a scalar subquery (stratified
	-- aggregation).
	CREATE VIEW expensiveFactories (factno, total) AS
	  SELECT factno, total FROM factoryCost
	  WHERE total > (SELECT AVG(total) FROM factoryCost);

	-- RECURSIVE: assemblies contain parts directly, and transitively
	-- whatever their sub-assemblies contain (component.partno may itself
	-- be an assembly number). Evaluated by fixpoint iteration.
	CREATE VIEW contains (asmno, partno) AS
	  SELECT asmno, partno FROM component
	  UNION
	  SELECT c.asmno, t.partno FROM component c, contains t WHERE c.partno = t.asmno;

	-- Aggregation over the COMPLETED recursion: one stratum above it.
	CREATE VIEW partCount (asmno, nparts) AS
	  SELECT asmno, COUNT(*) FROM contains GROUPBY asmno;
	`)

	// Data: 6 factories, 120 assemblies, 400 parts, ~6 components each.
	var parts, comps, asms, facts []starmagic.Row
	for f := 1; f <= 6; f++ {
		facts = append(facts, starmagic.Row{
			starmagic.Int(int64(f)), starmagic.String(fmt.Sprintf("City%d", f)),
		})
	}
	for p := 1; p <= 400; p++ {
		parts = append(parts, starmagic.Row{
			starmagic.Int(int64(p)),
			starmagic.String(fmt.Sprintf("part%03d", p)),
			starmagic.Int(int64(p%6 + 1)),
			starmagic.Float(float64(1 + (p*31)%90)),
		})
	}
	for a := 1; a <= 120; a++ {
		asms = append(asms, starmagic.Row{
			starmagic.Int(int64(a)),
			starmagic.String(fmt.Sprintf("asm%03d", a)),
			starmagic.Int(int64(a%6 + 1)),
		})
		for k := 0; k < 6; k++ {
			comps = append(comps, starmagic.Row{
				starmagic.Int(int64(a)),
				starmagic.Int(int64((a*7+k*53)%400 + 1)),
				starmagic.Int(int64(1 + k%4)),
			})
		}
	}
	must(db.InsertRows("factory", facts))
	must(db.InsertRows("part", parts))
	must(db.InsertRows("component", comps))
	must(db.InsertRows("assembly", asms))
	db.Analyze()

	// 1. Stratum numbers per the paper's definition.
	strata, err := semant.Strata(db.Engine().Catalog())
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(strata))
	for n := range strata {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if strata[names[i]] != strata[names[j]] {
			return strata[names[i]] < strata[names[j]]
		}
		return names[i] < names[j]
	})
	fmt.Println("stratum numbers:")
	for _, n := range names {
		fmt.Printf("  %d  %s\n", strata[n], n)
	}

	// 2. A selective query over stratum 2. Magic cascades: the city filter
	// restricts factories, factory numbers restrict factoryCost, whose
	// magic restricts assembly/asmCost, whose magic restricts
	// component/part.
	//
	// (Querying expensiveFactories instead would NOT profit from magic: its
	// scalar subquery needs the average over ALL factories, so the full
	// stratum-2 computation is unavoidable — and the pipeline's cost
	// comparison correctly refuses the transformation there. Try it.)
	const query = `
	SELECT f.city, v.total, v.assemblies
	FROM factory f, factoryCost v
	WHERE f.factno = v.factno AND f.city = 'City3'`

	fmt.Println("\nquery: factory cost rollup for City3")
	var rows []string
	for _, s := range []starmagic.Strategy{
		starmagic.StrategyOriginal, starmagic.StrategyCorrelated, starmagic.StrategyEMST,
	} {
		res, err := db.QueryWith(query, s)
		if err != nil {
			log.Fatal(err)
		}
		var text string
		for _, r := range res.Rows {
			for i, v := range r {
				if i > 0 {
					text += "|"
				}
				text += v.Format()
			}
			text += " "
		}
		rows = append(rows, text)
		fmt.Printf("  %-11s -> %s (exec %v, emst-plan=%v)\n", s, text, res.Plan.ExecTime, res.Plan.UsedEMST)
	}
	for _, r := range rows[1:] {
		if r != rows[0] {
			log.Fatal("strategies disagree!")
		}
	}
	fmt.Println("all strategies agree across four strata of views")

	// 3. Recursion: transitive containment of assembly 1 (assemblies are
	// numbered 1..120; sub-assembly links arise where a component's partno
	// collides with an assembly number).
	res, err := db.Query("SELECT COUNT(*) FROM contains WHERE asmno = 1")
	if err != nil {
		log.Fatal(err)
	}
	direct, err := db.Query("SELECT COUNT(*) FROM component WHERE asmno = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecursive containment: assembly 1 holds %s parts transitively (%s directly)\n",
		res.Rows[0][0].Format(), direct.Rows[0][0].Format())
	if res.Rows[0][0].I < direct.Rows[0][0].I {
		log.Fatal("fixpoint lost rows")
	}
	agg, err := db.Query("SELECT nparts FROM partCount WHERE asmno = 1")
	if err != nil {
		log.Fatal(err)
	}
	if agg.Rows[0][0].I != res.Rows[0][0].I {
		log.Fatal("stratified aggregate disagrees with the fixpoint")
	}
	fmt.Println("aggregation above the recursion (stratified) agrees with the fixpoint")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
