// Quickstart: the paper's running example (Example 1.1) end to end.
//
// We create the employee/department schema, define the mgrSal and
// avgMgrSal views, load data, and run query D — "the average salary of all
// the managers in the department named Planning" — under all three
// execution strategies, printing the rows, the plan decision, and the
// work counters that show magic restricting the computation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"starmagic"
)

func main() {
	db := starmagic.Open()

	db.MustExec(`
	CREATE TABLE department (deptno INT, deptname VARCHAR(30), mgrno INT, PRIMARY KEY (deptno));
	CREATE TABLE employee (empno INT, empname VARCHAR(30), workdept INT, salary FLOAT, PRIMARY KEY (empno));
	CREATE INDEX emp_dept ON employee (workdept);

	-- The two views of the paper's Example 1.1 (GROUPBY is the paper's
	-- spelling; GROUP BY works too).
	CREATE VIEW mgrSal (empno, empname, workdept, salary) AS
	  SELECT e.empno, e.empname, e.workdept, e.salary
	  FROM employee e, department d WHERE e.empno = d.mgrno;
	CREATE VIEW avgMgrSal (workdept, avgsalary) AS
	  SELECT workdept, AVG(salary) FROM mgrSal GROUPBY workdept;
	`)

	// Load 50 departments with 30 employees each; the manager of each
	// department is its first employee.
	var deptRows, empRows []starmagic.Row
	for d := 1; d <= 50; d++ {
		name := fmt.Sprintf("Dept%02d", d)
		if d == 1 {
			name = "Planning"
		}
		deptRows = append(deptRows, starmagic.Row{
			starmagic.Int(int64(d)), starmagic.String(name), starmagic.Int(int64(d*100 + 1)),
		})
		for i := 1; i <= 30; i++ {
			empno := int64(d*100 + i)
			empRows = append(empRows, starmagic.Row{
				starmagic.Int(empno),
				starmagic.String(fmt.Sprintf("emp%04d", empno)),
				starmagic.Int(int64(d)),
				starmagic.Float(30000 + float64((empno*37)%50000)),
			})
		}
	}
	if err := db.InsertRows("department", deptRows); err != nil {
		log.Fatal(err)
	}
	if err := db.InsertRows("employee", empRows); err != nil {
		log.Fatal(err)
	}

	const queryD = `
	SELECT d.deptname, s.workdept, s.avgsalary
	FROM department d, avgMgrSal s
	WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`

	ctx := context.Background()
	for _, strategy := range []starmagic.Strategy{
		starmagic.StrategyOriginal, starmagic.StrategyCorrelated, starmagic.StrategyEMST,
	} {
		res, err := db.QueryContext(ctx, queryD, starmagic.WithStrategy(strategy))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s ", strategy)
		for _, row := range res.Rows {
			for i, v := range row {
				if i > 0 {
					fmt.Print(" | ")
				}
				fmt.Print(v.Format())
			}
		}
		fmt.Printf("   (exec %v, %d base rows read, emst-plan=%v)\n",
			res.Plan.ExecTime, res.Plan.Counters.BaseRows, res.Plan.UsedEMST)
	}

	// A tracer sees every pipeline phase of a query as a timed span.
	rec := starmagic.NewRecorder()
	if _, err := db.QueryContext(ctx, queryD, starmagic.WithTracer(rec)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- pipeline spans ---")
	for _, sp := range rec.Spans() {
		fmt.Printf("%-10s %v\n", sp.Name, sp.Duration)
	}

	// EXPLAIN shows the QGM graph through the three rewrite phases — the
	// textual form of the paper's Figure 4.
	fmt.Println("\n--- EXPLAIN (EMST) ---")
	info, err := db.ExplainContext(ctx, queryD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(info.String())
	fmt.Printf("\nmagic rule fired %d times\n", info.RuleFires("emst"))
}
