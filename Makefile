# starmagic — reproduction of "Implementation of Magic-sets in a Relational
# Database System" (Mumick & Pirahesh, SIGMOD 1994).

GO ?= go

.PHONY: all build test test-short race cover check fmt-check bench bench-json bench-check table1 sweep ablation fuzz examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/engine/ ./internal/core/ ./internal/resource/ ./internal/storage/ ./internal/wal/ ./internal/wire/ ./internal/opt/ ./internal/catalog/

cover:
	$(GO) test -cover ./...

# Full verification gate: formatting, build, vet, tests, the race detector
# over the packages with intra-query parallelism and durability (executor,
# engine — including the crash-recovery suite in durable_test.go — the
# resource governor, and the write-ahead log), and the bench-regression
# gate against the recorded baseline.
check: fmt-check
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/exec/... ./internal/engine/... ./internal/resource/... ./internal/storage/... ./internal/vec/... ./internal/wal/... ./internal/wire/... ./internal/opt/... ./internal/catalog/...
	$(MAKE) bench-check

# gofmt as a gate: print offending files and fail if any exist.
fmt-check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi

# Table 1 + figure benchmarks (testing.B)
bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable perf trajectory: row-key encoders, hash-join build,
# cold-vs-cached prepares, spill-on vs spill-off join/sort pairs,
# vectorized-vs-row executor pairs (ns/row), wire-protocol round-trips
# (COM_QUERY ns/row and cached COM_STMT_EXECUTE), MVCC transaction-commit
# latency plus DML throughput under an open streaming scan, ANALYZE and
# histogram-probe costs plus the skewed plan-pick A/B, WAL commit latency
# (per-commit fsync vs group commit) and recovery speed per MB of log, and
# Table-1 experiments (ns/op + allocs/op) written to $(BENCH_OUT).
# Override per PR: make bench-json BENCH_OUT=BENCH_11.json
BENCH_OUT ?= BENCH_10.json
bench-json:
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# Regression gate: rerun the row-key, hash-join, and prepare-path
# microbenchmarks and fail if any is >15% slower than the BENCH_1.json
# baseline (threshold tunable via BENCH_THRESHOLD; benchmarks absent from
# the baseline pass trivially). The fresh run goes to a scratch file, not
# the baseline.
BENCH_THRESHOLD ?= 15
bench-check:
	$(GO) run ./cmd/benchjson -out .bench_check.json -experiments "" \
		-baseline BENCH_1.json -threshold $(BENCH_THRESHOLD)

# The paper's Table 1, normalized elapsed times
table1:
	$(GO) run ./cmd/table1 -reps 5

sweep:
	$(GO) run ./cmd/table1 -reps 3 -sweep

ablation:
	$(GO) run ./cmd/table1 -reps 3 -ablation

# Parser robustness fuzzing (bounded)
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s -run xxx ./internal/sql/
	$(GO) test -fuzz FuzzLikeMatch -fuzztime 15s -run xxx ./internal/exec/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/decisionsupport
	$(GO) run ./examples/extensibility
	$(GO) run ./examples/recursion
	$(GO) run ./examples/tpcd

clean:
	$(GO) clean -testcache
	rm -f .bench_check.json
