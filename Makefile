# starmagic — reproduction of "Implementation of Magic-sets in a Relational
# Database System" (Mumick & Pirahesh, SIGMOD 1994).

GO ?= go

.PHONY: all build test test-short race cover bench table1 sweep ablation fuzz examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/engine/ ./internal/core/

cover:
	$(GO) test -cover ./...

# Table 1 + figure benchmarks (testing.B)
bench:
	$(GO) test -bench=. -benchmem .

# The paper's Table 1, normalized elapsed times
table1:
	$(GO) run ./cmd/table1 -reps 5

sweep:
	$(GO) run ./cmd/table1 -reps 3 -sweep

ablation:
	$(GO) run ./cmd/table1 -reps 3 -ablation

# Parser robustness fuzzing (bounded)
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s -run xxx ./internal/sql/
	$(GO) test -fuzz FuzzLikeMatch -fuzztime 15s -run xxx ./internal/exec/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/decisionsupport
	$(GO) run ./examples/extensibility
	$(GO) run ./examples/recursion
	$(GO) run ./examples/tpcd

clean:
	$(GO) clean -testcache
