// Benchmarks regenerating every table and figure of the paper's evaluation:
//
//   - Table 1 (experiments A–H): BenchmarkExp<ID>/<strategy> measures one
//     execution of the experiment's prepared plan under each strategy.
//     Compare the per-op times of the three strategies of one experiment to
//     obtain the paper's normalized rows (Original = 100); `go run
//     ./cmd/table1` prints them directly.
//   - Figures 1/4 (the magic transformation of query D):
//     BenchmarkPipelineQueryD measures the three-phase rewrite+costing
//     pipeline that produces those graphs.
//   - §3.2 (join-order determination cost): BenchmarkJoinOrderHeuristic
//     measures the two plan-optimization passes of the heuristic on an
//     8-way join; `go run ./cmd/optcost` prints the 2^n comparison.
//
// Run with: go test -bench=. -benchmem .
package starmagic_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"starmagic/internal/bench"
	"starmagic/internal/core"
	"starmagic/internal/datum"
	"starmagic/internal/engine"
	"starmagic/internal/semant"
	"starmagic/internal/sql"
)

// benchCfg keeps bench runtime moderate; use cmd/table1 -scale for larger
// runs.
var benchCfg = bench.Config{
	Departments: 100, EmpsPerDept: 20, SalesPerDept: 80, OrdersPerDept: 80, Seed: 1994,
}

var (
	benchOnce sync.Once
	benchDBV  *engine.Database
	benchErr  error
)

func benchDB(b *testing.B) *engine.Database {
	benchOnce.Do(func() { benchDBV, benchErr = bench.NewDB(benchCfg) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDBV
}

// benchmarkExperiment runs one (experiment, strategy) pair.
func benchmarkExperiment(b *testing.B, id string, strategy engine.Strategy) {
	db := benchDB(b)
	var exp bench.Experiment
	for _, e := range bench.Experiments() {
		if e.ID == id {
			exp = e
		}
	}
	if exp.ID == "" {
		b.Fatalf("no experiment %s", id)
	}
	p, err := db.Prepare(exp.Query, strategy)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1, experiments A–H × {Original, Correlated, EMST}.
func BenchmarkExpA(b *testing.B) { runStrategies(b, "A") }
func BenchmarkExpB(b *testing.B) { runStrategies(b, "B") }
func BenchmarkExpC(b *testing.B) { runStrategies(b, "C") }
func BenchmarkExpD(b *testing.B) { runStrategies(b, "D") }
func BenchmarkExpE(b *testing.B) { runStrategies(b, "E") }
func BenchmarkExpF(b *testing.B) { runStrategies(b, "F") }
func BenchmarkExpG(b *testing.B) { runStrategies(b, "G") }
func BenchmarkExpH(b *testing.B) { runStrategies(b, "H") }

func runStrategies(b *testing.B, id string) {
	b.Run("original", func(b *testing.B) { benchmarkExperiment(b, id, engine.Original) })
	b.Run("correlated", func(b *testing.B) { benchmarkExperiment(b, id, engine.Correlated) })
	b.Run("emst", func(b *testing.B) { benchmarkExperiment(b, id, engine.EMST) })
}

// BenchmarkPipelineQueryD measures the optimization pipeline that produces
// the Figure 1/Figure 4 graph sequence for the paper's query D.
func BenchmarkPipelineQueryD(b *testing.B) {
	db := benchDB(b)
	queryD := bench.Experiments()[6].Query // experiment G is the query-D shape
	q, err := sql.ParseQuery(queryD)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := semant.NewBuilder(db.Catalog()).Build(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Optimize(g, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecursiveTC measures the deductive-database headline: bounded
// transitive closure with and without magic (Original computes the full
// closure; EMST seeds the fixpoint with the query constant).
func BenchmarkRecursiveTC(b *testing.B) {
	db := engine.New()
	if _, err := db.Exec(`
	CREATE TABLE edge (src INT, dst INT, PRIMARY KEY (src, dst));
	CREATE INDEX edge_src ON edge (src);
	CREATE VIEW tc (src, dst) AS
	  SELECT src, dst FROM edge
	  UNION
	  SELECT t.src, e.dst FROM tc t, edge e WHERE t.dst = e.src;`); err != nil {
		b.Fatal(err)
	}
	var script strings.Builder
	script.WriteString("INSERT INTO edge VALUES ")
	for c := 0; c < 40; c++ {
		for i := 0; i < 14; i++ {
			if c+i > 0 {
				script.WriteString(", ")
			}
			fmt.Fprintf(&script, "(%d, %d)", c*1000+i, c*1000+i+1)
		}
	}
	if _, err := db.Exec(script.String()); err != nil {
		b.Fatal(err)
	}
	const query = "SELECT dst FROM tc WHERE src = 7000"
	for _, s := range []engine.Strategy{engine.Original, engine.EMST} {
		b.Run(s.String(), func(b *testing.B) {
			p, err := db.Prepare(query, s)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Execute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRowKey compares the executor's row-key encoders over a mixed-type
// row set (ints, floats, strings, bools, NULLs): the binary length-prefixed
// AppendKey with a reused buffer against the seed's strings.Builder path.
// Run with -benchmem; the binary path amortizes to zero allocations per row.
func BenchmarkRowKey(b *testing.B) {
	rows := bench.KeyRows(1024)
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 64)
		for i := 0; i < b.N; i++ {
			buf = datum.AppendKey(buf[:0], rows[i%len(rows)])
		}
		_ = buf
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		var sink string
		for i := 0; i < b.N; i++ {
			sink = bench.LegacyRowKey(rows[i%len(rows)])
		}
		_ = sink
	})
}

// hashJoinDB builds two unindexed tables so the equi-join below must take
// the transient hash-join path (no index to probe).
func hashJoinDB(b *testing.B, rows int) *engine.Database {
	b.Helper()
	db := engine.New()
	if _, err := db.Exec(`
	CREATE TABLE build_side (a INT, b INT);
	CREATE TABLE probe_side (a INT, b INT);`); err != nil {
		b.Fatal(err)
	}
	load := func(table string, mod int64) {
		batch := make([]datum.Row, rows)
		for i := range batch {
			batch[i] = datum.Row{datum.Int(int64(i)), datum.Int(int64(i) % mod)}
		}
		if err := db.InsertRows(table, batch); err != nil {
			b.Fatal(err)
		}
	}
	load("build_side", 977)
	load("probe_side", 953)
	return db
}

// BenchmarkHashJoinBuild measures one execution of an unindexed equi-join:
// each Execute runs with a fresh evaluator, so the transient hash table is
// rebuilt every iteration — serial and with the parallel range-partitioned
// build.
func BenchmarkHashJoinBuild(b *testing.B) {
	const rows = 8192
	db := hashJoinDB(b, rows)
	const query = `SELECT p.a FROM probe_side p, build_side s
	               WHERE p.b = s.b AND s.a < 50 AND p.a < 50`
	// The parallel variant pins 4 workers (rather than GOMAXPROCS) so the
	// range-partitioned build path is measured even on single-CPU hosts.
	for _, par := range []struct {
		name string
		n    int
	}{{"serial", 1}, {"parallel", 4}} {
		b.Run(par.name, func(b *testing.B) {
			b.ReportAllocs()
			db.SetParallelism(par.n)
			p, err := db.Prepare(query, engine.EMST)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Execute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	db.SetParallelism(0)
}

// earlyExitDB builds a 100k-row table for the streaming early-exit
// benchmarks.
func earlyExitDB(b *testing.B) *engine.Database {
	b.Helper()
	db := engine.New()
	if _, err := db.Exec(`
	CREATE TABLE big (id INT, grp INT);
	CREATE TABLE small (id INT);
	INSERT INTO small VALUES (1), (2), (3);`); err != nil {
		b.Fatal(err)
	}
	const rows = 100_000
	batch := make([]datum.Row, rows)
	for i := range batch {
		batch[i] = datum.Row{datum.Int(int64(i)), datum.Int(int64(i % 97))}
	}
	if err := db.InsertRows("big", batch); err != nil {
		b.Fatal(err)
	}
	return db
}

// runEarlyExit benchmarks one query streaming versus materialized: the
// streaming side stops pulling at the first decisive row, the materialized
// baseline reads the full 100k-row table every execution.
func runEarlyExit(b *testing.B, db *engine.Database, query string) {
	cases := []struct {
		name string
		opts []engine.QueryOption
	}{
		{"streaming", nil},
		{"materialized", []engine.QueryOption{engine.WithMaterialized()}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			p, err := db.PrepareContext(context.Background(), query, c.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Execute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExistsEarlyExit measures the semi-join short-circuit: an
// uncorrelated EXISTS over a 100k-row table is satisfied by its first
// batch when streamed.
func BenchmarkExistsEarlyExit(b *testing.B) {
	db := earlyExitDB(b)
	runEarlyExit(b, db, `SELECT s.id FROM small s WHERE EXISTS (SELECT 1 FROM big t)`)
}

// BenchmarkLimitPushdown measures the LIMIT stop signal: five rows out of
// 100k stop the scan spine when streamed.
func BenchmarkLimitPushdown(b *testing.B) {
	db := earlyExitDB(b)
	runEarlyExit(b, db, `SELECT t.id FROM big t WHERE t.id >= 10 LIMIT 5`)
}

// BenchmarkJoinOrderHeuristic measures the §3.2 heuristic: two plan-
// optimization passes around EMST on an n-way join, for n = 4 and 8.
func BenchmarkJoinOrderHeuristic(b *testing.B) {
	db := benchDB(b)
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var from, where []string
			for i := 0; i < n; i++ {
				from = append(from, fmt.Sprintf("employee e%d", i))
				if i > 0 {
					where = append(where, fmt.Sprintf("e%d.workdept = e%d.workdept", i-1, i))
				}
			}
			where = append(where, "e0.empno < 1050")
			query := "SELECT e0.empno FROM " + strings.Join(from, ", ") +
				" WHERE " + strings.Join(where, " AND ")
			q, err := sql.ParseQuery(query)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := semant.NewBuilder(db.Catalog()).Build(q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Optimize(g, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// preparedBenchQuery is a parameterized Table-1-style query through a
// grouping view: the magic transformation installs a seed box, and because
// `?` is an opaque constant the seeded plan is identical for every binding —
// which is what lets the plan cache serve it.
const preparedBenchQuery = `SELECT d.deptname, v.avgsal FROM department d, avgSalary v
	WHERE d.deptno = v.workdept AND d.deptname = ?`

// BenchmarkColdPrepare measures the full prepare pipeline with the plan
// cache disabled: parse, bind, the three rewrite phases, and both
// plan-optimization passes of the §3.2 cost comparison.
func BenchmarkColdPrepare(b *testing.B) {
	db := benchDB(b)
	db.SetPlanCache(false)
	defer db.SetPlanCache(true)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.PrepareContext(ctx, preparedBenchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedCacheHit measures the same prepare served by the sharded
// plan cache: normalize the SQL, hit one shard's LRU, shallow-copy the
// cached plan.
func BenchmarkPreparedCacheHit(b *testing.B) {
	db := benchDB(b)
	db.SetPlanCache(true)
	ctx := context.Background()
	if _, err := db.PrepareContext(ctx, preparedBenchQuery); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.PrepareContext(ctx, preparedBenchQuery); err != nil {
			b.Fatal(err)
		}
	}
}
