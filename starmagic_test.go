package starmagic_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"starmagic"
)

func openPaperDB(t *testing.T) *starmagic.DB {
	t.Helper()
	db := starmagic.Open()
	if _, err := db.Exec(`
	CREATE TABLE department (deptno INT, deptname VARCHAR(30), mgrno INT, PRIMARY KEY (deptno));
	CREATE TABLE employee (empno INT, empname VARCHAR(30), workdept INT, salary FLOAT, PRIMARY KEY (empno));
	CREATE VIEW mgrSal (empno, empname, workdept, salary) AS
	  SELECT e.empno, e.empname, e.workdept, e.salary
	  FROM employee e, department d WHERE e.empno = d.mgrno;
	CREATE VIEW avgMgrSal (workdept, avgsalary) AS
	  SELECT workdept, AVG(salary) FROM mgrSal GROUPBY workdept;
	INSERT INTO department VALUES (1, 'Planning', 101), (2, 'Dev', 201);
	INSERT INTO employee VALUES (101, 'alice', 1, 1000), (102, 'bob', 1, 500),
	  (201, 'carol', 2, 800), (202, 'dan', 2, 600);
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIQueryD(t *testing.T) {
	db := openPaperDB(t)
	const queryD = `SELECT d.deptname, s.workdept, s.avgsalary
		FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`
	for _, s := range []starmagic.Strategy{
		starmagic.StrategyOriginal, starmagic.StrategyCorrelated, starmagic.StrategyEMST,
	} {
		res, err := db.QueryWith(queryD, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%v: %d rows", s, len(res.Rows))
		}
		row := res.Rows[0]
		if row[0].Format() != "Planning" || row[1].Format() != "1" || row[2].Format() != "1000" {
			t.Errorf("%v: row = %v", s, row)
		}
	}
}

func TestPublicAPIValueConstructors(t *testing.T) {
	db := openPaperDB(t)
	if err := db.InsertRows("employee", []starmagic.Row{
		{starmagic.Int(301), starmagic.String("eve"), starmagic.Int(2), starmagic.Float(999)},
		{starmagic.Int(302), starmagic.String("mallory"), starmagic.Null(), starmagic.Null()},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*), COUNT(workdept) FROM employee")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 6 || res.Rows[0][1].I != 5 {
		t.Errorf("counts = %v", res.Rows[0])
	}
}

func TestPublicAPIExplain(t *testing.T) {
	db := openPaperDB(t)
	out, err := db.Explain("SELECT workdept, avgsalary FROM avgMgrSal WHERE workdept = 1", starmagic.StrategyEMST)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "phase2") || !strings.Contains(out, "cost") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestPublicAPIPrepare(t *testing.T) {
	db := openPaperDB(t)
	p, err := db.Prepare("SELECT AVG(salary) FROM employee WHERE workdept = 1", starmagic.StrategyEMST)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := p.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].F != 750 {
			t.Errorf("avg = %v", res.Rows[0][0])
		}
	}
}

func TestMustExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExec did not panic on bad SQL")
		}
	}()
	starmagic.Open().MustExec("CREATE GARBAGE")
}

func TestParseStrategyPublic(t *testing.T) {
	s, err := starmagic.ParseStrategy("magic")
	if err != nil || s != starmagic.StrategyEMST {
		t.Errorf("ParseStrategy = %v, %v", s, err)
	}
}

// TestPublicAPIQueryContext exercises the context API surface end to end:
// options, tracing, structured explain, and the metrics snapshot.
func TestPublicAPIQueryContext(t *testing.T) {
	db := openPaperDB(t)
	ctx := context.Background()
	const queryD = `SELECT d.deptname, s.workdept, s.avgsalary
		FROM department d, avgMgrSal s
		WHERE d.deptno = s.workdept AND d.deptname = 'Planning'`

	rec := starmagic.NewRecorder()
	res, err := db.QueryContext(ctx, queryD,
		starmagic.WithStrategy(starmagic.StrategyEMST),
		starmagic.WithTracer(rec),
		starmagic.WithRowLimit(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Planning" {
		t.Errorf("rows = %v", res.Rows)
	}
	if _, ok := rec.Span("execute"); !ok {
		t.Errorf("no execute span; spans = %v", rec.Spans())
	}

	info, err := db.ExplainContext(ctx, queryD)
	if err != nil {
		t.Fatal(err)
	}
	if info.RuleFires("emst") == 0 {
		t.Error("explain reports no magic fires for query D")
	}
	if !strings.Contains(info.String(), "cost before EMST") {
		t.Error("explain text lost the cost comparison")
	}

	m := db.Metrics()
	if m.Queries != 1 || m.Plans != 2 {
		t.Errorf("metrics queries=%d plans=%d; want 1, 2", m.Queries, m.Plans)
	}
	db.ResetMetrics()
	if m = db.Metrics(); m.Queries != 0 {
		t.Errorf("after reset queries = %d", m.Queries)
	}

	ctx2, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := db.QueryContext(ctx2, queryD); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx: err = %v", err)
	}
}

// ExampleOpen demonstrates the quickest possible use of the engine.
func ExampleOpen() {
	db := starmagic.Open()
	db.MustExec(`
	CREATE TABLE parts (pno INT, pname VARCHAR(20), weight FLOAT, PRIMARY KEY (pno));
	INSERT INTO parts VALUES (1, 'bolt', 0.1), (2, 'nut', 0.05), (3, 'plate', 2.5);
	`)
	res, err := db.Query("SELECT pname FROM parts WHERE weight < 1 ORDER BY pname")
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0].Format())
	}
	// Output:
	// bolt
	// nut
}

// ExampleDB_QueryWith shows strategy selection — the three columns of the
// paper's Table 1.
func ExampleDB_QueryWith() {
	db := starmagic.Open()
	db.MustExec(`
	CREATE TABLE t (a INT, PRIMARY KEY (a));
	CREATE VIEW doubled (a2) AS SELECT a * 2 FROM t;
	INSERT INTO t VALUES (1), (2), (3);
	`)
	res, _ := db.QueryWith("SELECT a2 FROM doubled WHERE a2 = 4", starmagic.StrategyEMST)
	fmt.Println(len(res.Rows), res.Rows[0][0].Format())
	// Output: 1 4
}
